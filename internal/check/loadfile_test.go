package check

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -Wall loading discipline: a warning-bearing but error-free file
// must load into a usable circuit while surfacing every diagnostic on
// the warn writer. The dangling fixture has a gate that drives nothing
// — a warning, not an error.
func TestLoadFileWallSurfacesWarnings(t *testing.T) {
	path := filepath.Join("testdata", "dangling.bench")

	var warn bytes.Buffer
	c, err := LoadFile(path, &warn)
	if err != nil {
		t.Fatalf("warning-only file failed to load: %v", err)
	}
	if c == nil || c.NumInputs() != 2 || c.NumOutputs() != 1 {
		t.Fatalf("loaded circuit has wrong shape: %+v", c)
	}
	out := warn.String()
	if !strings.Contains(out, RuleDangling) || !strings.Contains(out, "dead") {
		t.Fatalf("-Wall output missing the dangling-gate diagnostic:\n%s", out)
	}

	// Without a warn writer the same load is silent but still succeeds.
	c2, err := LoadFile(path, nil)
	if err != nil || c2 == nil {
		t.Fatalf("nil-writer load: c=%v err=%v", c2, err)
	}
}

// Error-severity diagnostics must fail the load whether or not a warn
// writer is attached, and I/O failures come back as plain errors.
func TestLoadFileErrorPaths(t *testing.T) {
	var warn bytes.Buffer
	if _, err := LoadFile(filepath.Join("testdata", "cycle.bench"), &warn); err == nil {
		t.Fatal("cyclic netlist loaded successfully")
	}
	if _, err := LoadFile(filepath.Join("testdata", "no_such.bench"), nil); !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want not-exist", err)
	}
}
