// Package check is the structural netlist analyzer: a catalog of lint
// rules over gate-level circuits producing typed diagnostics with rule
// IDs, severities, node names and .bench source lines.
//
// The rules split into three groups:
//
//   - Structural soundness (error severity): combinational cycles with
//     the offending path printed, undriven nets, gate arity violations.
//     These make a circuit unusable by the simulator, CNF encoder and
//     ATPG stack; ir.Compile rejects circuits that fail them.
//   - Hygiene (warning/info severity): dangling gates, dead cones
//     unreachable from any primary output, provably-constant gate
//     outputs (constant propagation), unused primary inputs. Legal but
//     almost always a netlist bug, and they skew the paper's area and
//     coverage metrics (Tables I & II).
//   - Locked-circuit conventions: every key input must structurally
//     reach at least one primary output (a locked circuit failing this
//     has a no-op key bit — error severity), key inputs should follow
//     the keyinput<N> naming convention, and key bits conventionally
//     feed XOR/XNOR key gates.
//
// Source-level defects that prevent a circuit from being built at all
// (duplicate definitions, multiply-driven nets, undefined signals,
// parse-level cycles) are surfaced by Source/File, which map the bench
// parser's structured errors into the same diagnostic format.
package check

import (
	"fmt"
	"sort"
	"strings"

	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// Severity ranks a diagnostic.
type Severity uint8

// Severities, in increasing order.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns "info", "warning" or "error".
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Rule IDs. Circuit-level rules are produced by Circuit/Structural;
// source-level rules by Source/File (mapped from bench.ParseError).
const (
	// RuleCycle: combinational cycle; the diagnostic carries the cycle
	// path in driver order. Error.
	RuleCycle = "cycle"
	// RuleUndriven: a net with no driver — an Input-type node that is
	// registered as neither a primary nor a key input. Error.
	RuleUndriven = "undriven"
	// RuleArity: gate arity or reference violations (Buf/Not fanin != 1,
	// multi-input gates with < 2 fanins, out-of-range references,
	// unknown gate types). Error.
	RuleArity = "arity"
	// RuleDangling: a non-output gate driving nothing. Warning.
	RuleDangling = "dangling"
	// RuleDeadCone: a gate with fanout that still cannot reach any
	// primary output — it feeds only dead logic. Warning.
	RuleDeadCone = "dead-cone"
	// RuleUnusedInput: a primary input driving nothing. Info.
	RuleUnusedInput = "unused-input"
	// RuleConstOut: a gate output provably stuck at a constant under
	// constant propagation from Const0/Const1 drivers and degenerate
	// XOR/XNOR shapes. Warning.
	RuleConstOut = "const-out"
	// RuleKeyUnobservable: a key input with no structural path to any
	// primary output; its key gate cannot affect the function. Error.
	RuleKeyUnobservable = "key-unobservable"
	// RuleKeyNaming: a key input that does not follow the keyinput<N>
	// declaration-order naming convention. Warning.
	RuleKeyNaming = "key-naming"
	// RuleKeyGateShape: a key input whose fanout cone contains no
	// XOR/XNOR gate — an unconventional key-gate shape. Info.
	RuleKeyGateShape = "key-gate-shape"

	// RuleSyntax: unparseable .bench text. Error.
	RuleSyntax = "syntax"
	// RuleUnknownOp: unknown gate operator in an assignment. Error.
	RuleUnknownOp = "unknown-op"
	// RuleDupDef: a signal assigned by two gate definitions. Error.
	RuleDupDef = "dup-def"
	// RuleMultiDriven: a net driven more than once across declaration
	// kinds (INPUT redeclared, or INPUT also assigned). Error.
	RuleMultiDriven = "multi-driven"
	// RuleUndefined: a referenced signal that is never defined. Error.
	RuleUndefined = "undefined"
	// RuleIO: the source could not be read. Error.
	RuleIO = "io"
)

// Diagnostic is one finding: the rule that fired, its severity, the
// offending node (ID, name and .bench source line when known) and a
// human-readable message. Cycle carries the node names along a
// combinational cycle in driver order, for RuleCycle only.
type Diagnostic struct {
	Rule  string
	Sev   Severity
	Node  int // node ID, -1 when not tied to a node
	Name  string
	Line  int // 1-based .bench line, 0 when unknown
	Msg   string
	Cycle []string
}

// String renders the diagnostic as "line 12: error[cycle]: message".
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", d.Line)
	}
	fmt.Fprintf(&b, "%s[%s]: %s", d.Sev, d.Rule, d.Msg)
	return b.String()
}

// Report is the outcome of checking one circuit.
type Report struct {
	// Circuit is the checked circuit's name.
	Circuit string
	// Diags holds every diagnostic, grouped by rule in catalog order
	// and by node ID within a rule.
	Diags []Diagnostic
}

func (r *Report) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// ruleRank is the catalog order of the rule IDs, the primary sort key
// of a report's diagnostics.
var ruleRank = map[string]int{
	RuleCycle: 0, RuleUndriven: 1, RuleArity: 2,
	RuleDangling: 3, RuleDeadCone: 4, RuleUnusedInput: 5, RuleConstOut: 6,
	RuleKeyUnobservable: 7, RuleKeyNaming: 8, RuleKeyGateShape: 9,
	RuleSyntax: 10, RuleUnknownOp: 11, RuleDupDef: 12,
	RuleMultiDriven: 13, RuleUndefined: 14, RuleIO: 15,
}

// sort orders Diags canonically — rule catalog order, then node ID,
// then source line — so a report renders identically no matter which
// order the rules emitted findings. Every constructor (Structural,
// Circuit, Source) sorts before returning; without this, incidental
// emission order would leak into the CLI text and -json output.
func (r *Report) sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if ra, rb := ruleRank[a.Rule], ruleRank[b.Rule]; ra != rb {
			return ra < rb
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Line < b.Line
	})
}

// HasErrors reports whether any diagnostic has error severity.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Sev == Error {
			return true
		}
	}
	return false
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diagnostic { return r.AtLeast(Error) }

// AtLeast returns the diagnostics with severity >= min.
func (r *Report) AtLeast(min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Sev >= min {
			out = append(out, d)
		}
	}
	return out
}

// ByRule returns the diagnostics produced by the given rule.
func (r *Report) ByRule(rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// String renders the report one diagnostic per line, prefixed with the
// circuit name.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "%s: %s\n", r.Circuit, d)
	}
	return b.String()
}

// Err converts the report's error-severity diagnostics into a single
// error, or nil when there are none. Multiple errors are summarized
// with the first message and a count.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	first := errs[0]
	if len(errs) == 1 {
		return fmt.Errorf("check: circuit %q: %s", r.Circuit, first)
	}
	return fmt.Errorf("check: circuit %q: %s (and %d more errors)", r.Circuit, first, len(errs)-1)
}

// diag builds a node-anchored diagnostic, resolving name and line.
func diag(c *netlist.Circuit, rule string, sev Severity, id int, format string, args ...interface{}) Diagnostic {
	d := Diagnostic{
		Rule: rule,
		Sev:  sev,
		Node: id,
		Msg:  fmt.Sprintf(format, args...),
	}
	if id >= 0 && id < c.NumNodes() {
		d.Name = c.NameOf(id)
		d.Line = c.SrcLine(id)
	}
	return d
}

// Structural runs only the structural-soundness rules (arity, undriven,
// cycle) and returns their report. A circuit passing Structural can be
// compiled by ir.Compile and consumed by every evaluation backend.
func Structural(c *netlist.Circuit) *Report {
	rep := &Report{Circuit: c.Name}
	structural(c, rep)
	rep.sort()
	return rep
}

// structural appends arity/undriven/cycle diagnostics to rep and
// reports whether the circuit is sound enough for the graph-walking
// rules (no out-of-range references, no cycles).
func structural(c *netlist.Circuit, rep *Report) bool {
	sound := true

	registered := make(map[int]bool, len(c.PIs)+len(c.Keys))
	for _, in := range c.AllInputs() {
		if in < 0 || in >= c.NumNodes() || c.Gates[in].Type != netlist.Input {
			rep.add(diag(c, RuleArity, Error, in,
				"input list references node %d, which is not an Input node", in))
			sound = false
			continue
		}
		registered[in] = true
	}

	for id := range c.Gates {
		g := &c.Gates[id]
		switch g.Type {
		case netlist.Input:
			if len(g.Fanin) != 0 {
				rep.add(diag(c, RuleArity, Error, id, "input %q must have no fanin, has %d", c.NameOf(id), len(g.Fanin)))
				sound = false
			}
			if !registered[id] {
				rep.add(diag(c, RuleUndriven, Error, id,
					"net %q has no driver: an Input-type node registered as neither primary nor key input", c.NameOf(id)))
			}
		case netlist.Const0, netlist.Const1:
			if len(g.Fanin) != 0 {
				rep.add(diag(c, RuleArity, Error, id, "constant %q must have no fanin, has %d", c.NameOf(id), len(g.Fanin)))
				sound = false
			}
		case netlist.Buf, netlist.Not:
			if len(g.Fanin) != 1 {
				rep.add(diag(c, RuleArity, Error, id, "%v gate %q must have exactly 1 fanin, has %d", g.Type, c.NameOf(id), len(g.Fanin)))
				sound = false
			}
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
			if len(g.Fanin) < 2 {
				rep.add(diag(c, RuleArity, Error, id, "%v gate %q must have at least 2 fanins, has %d", g.Type, c.NameOf(id), len(g.Fanin)))
				sound = false
			}
		default:
			rep.add(diag(c, RuleArity, Error, id, "node %q has unknown gate type %d", c.NameOf(id), uint8(g.Type)))
			sound = false
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= c.NumNodes() {
				rep.add(diag(c, RuleArity, Error, id, "gate %q references out-of-range fanin %d", c.NameOf(id), f))
				sound = false
			}
		}
	}
	for _, o := range c.POs {
		if o < 0 || o >= c.NumNodes() {
			rep.add(Diagnostic{Rule: RuleArity, Sev: Error, Node: -1,
				Msg: fmt.Sprintf("output list references out-of-range node %d", o)})
			sound = false
		}
	}
	if !sound {
		return false
	}

	if cyc := c.FindCycle(); cyc != nil {
		names := make([]string, len(cyc))
		for i, id := range cyc {
			names[i] = c.NameOf(id)
		}
		d := diag(c, RuleCycle, Error, cyc[0],
			"combinational cycle: %s -> %s", strings.Join(names, " -> "), names[0])
		d.Cycle = names
		rep.add(d)
		return false
	}
	return true
}

// Circuit runs the full rule catalog and returns the report. The
// hygiene and key rules only run when the structural rules pass, since
// they need a sound DAG to walk; they run over the compiled IR through
// the shared dataflow engine (reachability and constant propagation are
// engine domains, not ad-hoc traversals).
func Circuit(c *netlist.Circuit) *Report {
	rep := &Report{Circuit: c.Name}
	if !structural(c, rep) {
		rep.sort()
		return rep
	}
	prog, err := ir.Compile(c)
	if err != nil {
		// Unreachable for a circuit that passed structural(); compile
		// validates the same conditions. Return what we have.
		rep.sort()
		return rep
	}

	fanout := c.FanoutLists()
	reach := dataflow.Run[bool](prog, &poReach{p: prog, isPO: poSet(prog)}, dataflow.Options{Workers: 1})
	isPO := make(map[int]bool, len(c.POs))
	for _, o := range c.POs {
		isPO[o] = true
	}

	// Dangling gates, dead cones and unused inputs.
	for id := range c.Gates {
		t := c.Gates[id].Type
		if t == netlist.Input {
			if len(fanout[id]) == 0 && !isPO[id] && !c.IsKeyInput(id) {
				rep.add(diag(c, RuleUnusedInput, Info, id, "primary input %q drives nothing", c.NameOf(id)))
			}
			continue
		}
		if reach[id] {
			continue
		}
		if len(fanout[id]) == 0 && !isPO[id] {
			rep.add(diag(c, RuleDangling, Warning, id,
				"%v gate %q drives nothing and is not an output", t, c.NameOf(id)))
		} else if len(fanout[id]) > 0 {
			rep.add(diag(c, RuleDeadCone, Warning, id,
				"%v gate %q cannot reach any primary output (dead cone)", t, c.NameOf(id)))
		}
	}

	constOutputs(c, prog, rep)
	keyRules(c, rep, fanout, reach)
	rep.sort()
	return rep
}

// poSet marks the primary-output nodes of a program.
func poSet(p *ir.Program) []bool {
	out := make([]bool, p.NumNodes())
	for _, o := range p.POs {
		out[o] = true
	}
	return out
}

// poReach is the output-reachability analysis as a backward engine
// domain: a node is live iff it is a primary output or drives one
// transitively. The dead-cone and key-unobservable rules read its
// fixpoint (it computes the same set c.TransitiveFanin(c.POs...) used
// to, one level sweep instead of a stack walk).
type poReach struct {
	p    *ir.Program
	isPO []bool
}

func (d *poReach) Direction() dataflow.Direction { return dataflow.Backward }
func (d *poReach) Bottom() bool                  { return false }
func (d *poReach) Join(a, b bool) bool           { return a || b }
func (d *poReach) Equal(a, b bool) bool          { return a == b }

func (d *poReach) Transfer(id int, get func(int) bool) bool {
	if d.isPO[id] {
		return true
	}
	for _, fo := range d.p.FanoutSpan(id) {
		if get(int(fo)) {
			return true
		}
	}
	return false
}

// constOutputs reports gates whose output the engine's ternary
// constant domain proves stuck: constants seed known values, AND/OR
// families fold through absorbing inputs, and two-input XOR/XNOR of the
// same signal folds regardless of the signal's value.
func constOutputs(c *netlist.Circuit, prog *ir.Program, rep *Report) {
	val := dataflow.Run[int8](prog, dataflow.NewConst(prog), dataflow.Options{Workers: 1})
	for _, id32 := range prog.Order {
		id := int(id32)
		switch prog.Ops[id] {
		case ir.OpInput, ir.OpConst0, ir.OpConst1:
			continue
		}
		if v := val[id]; v != dataflow.Unknown {
			rep.add(diag(c, RuleConstOut, Warning, id,
				"output of %v gate %q is provably constant %d", prog.Ops[id], c.NameOf(id), v))
		}
	}
}

// keyRules checks the locked-circuit conventions: key observability,
// key-input naming and key-gate shape. No-ops on unlocked circuits.
func keyRules(c *netlist.Circuit, rep *Report, fanout [][]int, reach []bool) {
	if c.NumKeys() == 0 {
		return
	}
	for i, id := range c.Keys {
		switch {
		case len(fanout[id]) == 0:
			// A key input driving no gate at all is a scheme artifact —
			// weighted locking with KeyBits not divisible by the control
			// width leaves the remainder bits unused — so it warns
			// rather than fails: the circuit still evaluates correctly,
			// the bit is just dead key material.
			rep.add(diag(c, RuleKeyUnobservable, Warning, id,
				"key input %q (bit %d) drives no gate; the key bit is dead key material", c.NameOf(id), i))
		case !reach[id]:
			rep.add(diag(c, RuleKeyUnobservable, Error, id,
				"key input %q (bit %d) has no structural path to any primary output; its key gate is a no-op", c.NameOf(id), i))
		}
		name := c.NameOf(id)
		want := fmt.Sprintf("keyinput%d", i)
		if !strings.EqualFold(name, want) {
			rep.add(diag(c, RuleKeyNaming, Warning, id,
				"key bit %d is named %q; the locked-circuit convention is %q (declaration order)", i, name, want))
		}
		if reach[id] && !reachesXorGate(c, fanout, id) {
			rep.add(diag(c, RuleKeyGateShape, Info, id,
				"key input %q never feeds an XOR/XNOR gate; unconventional key-gate shape", c.NameOf(id)))
		}
	}
}

// reachesXorGate reports whether any XOR/XNOR gate lies in the
// transitive fanout cone of root.
func reachesXorGate(c *netlist.Circuit, fanout [][]int, root int) bool {
	seen := make([]bool, c.NumNodes())
	stack := []int{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if t := c.Gates[id].Type; t == netlist.Xor || t == netlist.Xnor {
			return true
		}
		stack = append(stack, fanout[id]...)
	}
	return false
}
