package check

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"orap/internal/netlist"
)

// corpus maps each seeded-defect file to the rules it must fire. Files
// absent from the map (clean.bench, locked_clean.bench) must produce no
// diagnostics at all, serving as the non-firing case for every rule.
var corpus = map[string][]string{
	"cycle.bench":            {RuleCycle},
	"dup_def.bench":          {RuleDupDef},
	"multi_driven.bench":     {RuleMultiDriven},
	"undefined.bench":        {RuleUndefined},
	"unknown_op.bench":       {RuleUnknownOp},
	"syntax.bench":           {RuleSyntax},
	"dangling.bench":         {RuleDangling},
	"dead_cone.bench":        {RuleDeadCone, RuleDangling},
	"const_out.bench":        {RuleConstOut},
	"unused_input.bench":     {RuleUnusedInput},
	"key_unobservable.bench": {RuleKeyUnobservable},
	"key_unused.bench":       {RuleKeyUnobservable},
	"key_naming.bench":       {RuleKeyNaming},
	"key_shape.bench":        {RuleKeyGateShape},
}

func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.bench"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata corpus found: %v", err)
	}
	fired := map[string]bool{}
	for _, path := range files {
		name := filepath.Base(path)
		_, rep, err := File(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, seeded := corpus[name]
		if !seeded {
			if len(rep.Diags) != 0 {
				t.Errorf("%s: clean corpus file produced diagnostics:\n%s", name, rep)
			}
			continue
		}
		for _, rule := range want {
			if len(rep.ByRule(rule)) == 0 {
				t.Errorf("%s: rule %s did not fire; got:\n%s", name, rule, rep)
			}
			fired[rule] = true
		}
	}
	// Every source-expressible rule must have fired somewhere.
	for _, rules := range corpus {
		for _, rule := range rules {
			if !fired[rule] {
				t.Errorf("rule %s never fired across the corpus", rule)
			}
		}
	}
}

// TestCorpusSeverities pins the severity of each rule as documented.
func TestCorpusSeverities(t *testing.T) {
	sev := map[string]Severity{
		RuleCycle:        Error,
		RuleDupDef:       Error,
		RuleMultiDriven:  Error,
		RuleUndefined:    Error,
		RuleUnknownOp:    Error,
		RuleSyntax:       Error,
		RuleDangling:     Warning,
		RuleDeadCone:     Warning,
		RuleConstOut:     Warning,
		RuleUnusedInput:  Info,
		RuleKeyNaming:    Warning,
		RuleKeyGateShape: Info,
	}
	for file, rules := range corpus {
		_, rep, err := File(filepath.Join("testdata", file))
		if err != nil {
			t.Fatal(err)
		}
		for _, rule := range rules {
			want, pinned := sev[rule]
			if !pinned {
				continue
			}
			for _, d := range rep.ByRule(rule) {
				if d.Sev != want {
					t.Errorf("%s: rule %s fired at %v, want %v", file, rule, d.Sev, want)
				}
			}
		}
	}
	// key-unobservable is two-tier: dead key material (no fanout at
	// all) warns, buried key logic errors.
	_, rep, err := File(filepath.Join("testdata", "key_unobservable.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.ByRule(RuleKeyUnobservable); len(d) != 1 || d[0].Sev != Error {
		t.Errorf("buried key logic: got %v, want one error diagnostic", d)
	}
	_, rep, err = File(filepath.Join("testdata", "key_unused.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.ByRule(RuleKeyUnobservable); len(d) != 1 || d[0].Sev != Warning {
		t.Errorf("dead key material: got %v, want one warning diagnostic", d)
	}
	if rep.HasErrors() {
		t.Errorf("dead key material must not be an error:\n%s", rep)
	}
}

// TestCycleDiagnosticPath checks the cycle rule prints the actual loop,
// both from source (parse-level) and on a programmatically built DAG.
func TestCycleDiagnosticPath(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "cycle.bench"))
	if err != nil {
		t.Fatal(err)
	}
	_, rep := SourceString(string(src), "cycle.bench")
	diags := rep.ByRule(RuleCycle)
	if len(diags) == 0 {
		t.Fatal("cycle rule did not fire from source")
	}
	for _, want := range []string{"x", "y", "z"} {
		if !strings.Contains(diags[0].Msg, want) {
			t.Fatalf("cycle diagnostic %q does not name %s", diags[0].Msg, want)
		}
	}

	c := netlist.New("cyc")
	a, _ := c.AddInput("a")
	g1 := c.MustAddGate(netlist.And, "g1", a, a)
	g2 := c.MustAddGate(netlist.Or, "g2", g1, a)
	c.MarkOutput(g2)
	c.Gates[g1].Fanin[1] = g2 // close the loop
	rep = Circuit(c)
	diags = rep.ByRule(RuleCycle)
	if len(diags) != 1 {
		t.Fatalf("cycle rule fired %d times, want 1:\n%s", len(diags), rep)
	}
	if len(diags[0].Cycle) != 2 {
		t.Fatalf("cycle path %v, want the g1/g2 loop", diags[0].Cycle)
	}
	if !rep.HasErrors() {
		t.Fatal("cyclic circuit reported no errors")
	}
}

// TestUndrivenRule covers the rule not expressible in .bench syntax: an
// Input-type node registered as neither primary nor key input.
func TestUndrivenRule(t *testing.T) {
	c := netlist.New("undriven")
	a, _ := c.AddInput("a")
	y := c.MustAddGate(netlist.Not, "y", a)
	c.MarkOutput(y)
	if rep := Circuit(c); rep.HasErrors() {
		t.Fatalf("sound circuit reported errors:\n%s", rep)
	}
	// Orphan input node appended behind the builder's back.
	c.Gates = append(c.Gates, netlist.Gate{Type: netlist.Input})
	rep := Circuit(c)
	if got := rep.ByRule(RuleUndriven); len(got) != 1 {
		t.Fatalf("undriven fired %d times, want 1:\n%s", len(got), rep)
	}
	if !rep.HasErrors() {
		t.Fatal("undriven net did not produce an error")
	}
}

// TestArityRule covers the arity rule: a multi-input gate mutated down
// to a single fanin.
func TestArityRule(t *testing.T) {
	c := netlist.New("arity")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	y := c.MustAddGate(netlist.And, "y", a, b)
	c.MarkOutput(y)
	if rep := Circuit(c); len(rep.ByRule(RuleArity)) != 0 {
		t.Fatalf("sound circuit fired arity:\n%s", rep)
	}
	c.Gates[y].Fanin = c.Gates[y].Fanin[:1]
	rep := Circuit(c)
	if got := rep.ByRule(RuleArity); len(got) != 1 {
		t.Fatalf("arity fired %d times, want 1:\n%s", len(got), rep)
	}
	// Out-of-range fanin is also an arity diagnostic.
	c.Gates[y].Fanin = []int{a, 99}
	rep = Circuit(c)
	if got := rep.ByRule(RuleArity); len(got) != 1 {
		t.Fatalf("out-of-range fanin fired arity %d times, want 1:\n%s", len(got), rep)
	}
}

// TestStructuralSubset confirms Structural runs only the soundness
// rules: a dangling gate passes Structural but not Circuit.
func TestStructuralSubset(t *testing.T) {
	_, rep, err := File(filepath.Join("testdata", "dangling.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ByRule(RuleDangling)) == 0 {
		t.Fatal("Circuit did not flag the dangling gate")
	}
	src, _ := os.ReadFile(filepath.Join("testdata", "dangling.bench"))
	c, srep := SourceString(string(src), "dangling")
	if srep.HasErrors() {
		t.Fatalf("dangling corpus file has errors:\n%s", srep)
	}
	if got := Structural(c); len(got.Diags) != 0 {
		t.Fatalf("Structural fired hygiene rules:\n%s", got)
	}
}

// TestConstPropagation exercises the folding lattice beyond the corpus:
// absorbing inputs through inverting gates and constant chains.
func TestConstPropagation(t *testing.T) {
	c := netlist.New("const")
	a, _ := c.AddInput("a")
	one, _ := c.AddConst(true, "one")
	nand := c.MustAddGate(netlist.Nand, "n", a, a) // unknown: no folding
	nor := c.MustAddGate(netlist.Nor, "z", one, a) // 1 absorbs: NOR -> 0
	buf := c.MustAddGate(netlist.Buf, "bz", nor)   // chains the constant
	xn := c.MustAddGate(netlist.Xnor, "x", a, a)   // degenerate: always 1
	y := c.MustAddGate(netlist.Or, "y", nand, buf, xn)
	c.MarkOutput(y)
	rep := Circuit(c)
	got := map[string]bool{}
	for _, d := range rep.ByRule(RuleConstOut) {
		got[d.Name] = true
	}
	for _, want := range []string{"z", "bz", "x", "y"} {
		if !got[want] {
			t.Errorf("const-out did not flag %s; report:\n%s", want, rep)
		}
	}
	if got["n"] {
		t.Errorf("const-out wrongly flagged the non-constant NAND:\n%s", rep)
	}
}

// TestReportHelpers covers Err, AtLeast and String plumbing.
func TestReportHelpers(t *testing.T) {
	_, rep, err := File(filepath.Join("testdata", "key_unobservable.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatal("Err() returned nil for a report with errors")
	}
	if n := len(rep.AtLeast(Warning)); n < 2 { // key-unobservable + dangling kg
		t.Fatalf("AtLeast(Warning) returned %d diagnostics, want >= 2:\n%s", n, rep)
	}
	s := rep.String()
	if !strings.Contains(s, "key-unobservable") || !strings.Contains(s, "error") {
		t.Fatalf("report string %q lacks rule/severity markers", s)
	}
	clean := &Report{Circuit: "c"}
	if clean.Err() != nil || clean.HasErrors() {
		t.Fatal("empty report claims errors")
	}
}

// TestDiagnosticLines confirms diagnostics carry .bench source lines.
func TestDiagnosticLines(t *testing.T) {
	_, rep, err := File(filepath.Join("testdata", "dangling.bench"))
	if err != nil {
		t.Fatal(err)
	}
	d := rep.ByRule(RuleDangling)
	if len(d) != 1 {
		t.Fatalf("want one dangling diagnostic, got:\n%s", rep)
	}
	if d[0].Line != 6 { // "dead = OR(a, b)" is line 6 of dangling.bench
		t.Errorf("dangling diagnostic line = %d, want 6", d[0].Line)
	}
	if d[0].Name != "dead" {
		t.Errorf("dangling diagnostic name = %q, want dead", d[0].Name)
	}
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{Info: "info", Warning: "warning", Error: "error"} {
		if sev.String() != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, sev.String(), want)
		}
	}
}
