package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(7, "tableI")
	b := NewNamed(7, "tableII")
	c := NewNamed(7, "tableI")
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv {
		t.Fatalf("differently named streams produced identical first draw %x", av)
	}
	if av != cv {
		t.Fatalf("same-named streams diverged: %x vs %x", av, cv)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("zero-seeded stream produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(99)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for b, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Fatalf("bucket %d has %d draws, expected about %d", b, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBitsBalance(t *testing.T) {
	r := New(21)
	bs := make([]bool, 100000)
	r.Bits(bs)
	ones := 0
	for _, b := range bs {
		if b {
			ones++
		}
	}
	if ones < 49000 || ones > 51000 {
		t.Fatalf("bit stream heavily biased: %d ones out of %d", ones, len(bs))
	}
}

func TestWordsFills(t *testing.T) {
	r := New(77)
	w := make([]uint64, 32)
	r.Words(w)
	zero := 0
	for _, v := range w {
		if v == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("Words left %d zero words out of %d", zero, len(w))
	}
}

func TestSplitStableAcrossRuns(t *testing.T) {
	// Splitting is a pure function of the parent state: two identically
	// seeded parents must yield identical substream families.
	a := New(123).Split(8)
	b := New(123).Split(8)
	for i := range a {
		for d := 0; d < 100; d++ {
			if av, bv := a[i].Uint64(), b[i].Uint64(); av != bv {
				t.Fatalf("substream %d diverged at draw %d: %x vs %x", i, d, av, bv)
			}
		}
	}
}

func TestSplitAdvancesParent(t *testing.T) {
	// Split consumes parent state, so a second Split (and draws after a
	// Split) must not replay the first family.
	p := New(9)
	f1 := p.Split(4)
	f2 := p.Split(4)
	if f1[0].Uint64() == f2[0].Uint64() {
		t.Fatal("consecutive Split calls produced the same substreams")
	}
}

func TestSplitSubstreamsDisjoint(t *testing.T) {
	// 1e6 draws from each of two substreams must not overlap: xoshiro
	// sequences from unrelated seeds would only collide by 64-bit chance
	// (~5e-8 for this volume), and the fixed seed makes the check exact.
	if testing.Short() {
		t.Skip("2e6 draws")
	}
	streams := New(2026).Split(2)
	const draws = 1_000_000
	seen := make(map[uint64]int8, 2*draws)
	for si, s := range streams {
		for i := 0; i < draws; i++ {
			v := s.Uint64()
			if prev, ok := seen[v]; ok && prev != int8(si) {
				t.Fatalf("substreams share value %x (draw %d of stream %d)", v, i, si)
			}
			seen[v] = int8(si)
		}
	}
}

func TestSubStreamLabelling(t *testing.T) {
	a := New(7).SubStream("hd")
	b := New(7).SubStream("faults")
	c := New(7).SubStream("hd")
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv {
		t.Fatalf("differently labelled substreams matched: %x", av)
	}
	if av != cv {
		t.Fatalf("same-labelled substreams diverged: %x vs %x", av, cv)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
