// Package rng provides deterministic pseudo-random number streams for
// experiments. Every experiment in this repository derives its randomness
// from a named stream so that tables and benchmarks regenerate identically
// across runs and machines.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure;
// it only has to be fast, well distributed and reproducible.
package rng

// Stream is a deterministic pseudo-random number generator.
// The zero value is not valid; use New or NewNamed.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances the seed expander state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// NewNamed returns a stream whose seed mixes a base seed with a stream name,
// so independent experiment phases get independent, reproducible streams.
func NewNamed(seed uint64, name string) *Stream {
	h := seed
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3 // FNV-1a prime
	}
	return New(h)
}

// Split consumes one draw from r and returns n independent substreams
// derived from it. The substreams are a pure function of the parent's
// state at the call, so a fixed seed yields the same family of streams on
// every run and machine regardless of how the substreams are later
// consumed — the property that lets parallel drivers hand substream i to
// whichever worker picks up work item i and still produce bit-identical
// results at any worker count.
func (r *Stream) Split(n int) []*Stream {
	base := r.Uint64()
	out := make([]*Stream, n)
	for i := range out {
		// Each substream seed is one step of a splitmix64 sequence rooted
		// at the parent draw; New then expands it through four more steps,
		// so even adjacent substreams share no state structure.
		out[i] = New(splitmix64(&base))
	}
	return out
}

// SubStream consumes one draw from r and returns an independent substream
// bound to the given label, mixing exactly like NewNamed. Two SubStream
// calls at the same parent state with different labels give independent
// streams; the same label gives the same stream.
func (r *Stream) SubStream(label string) *Stream {
	return NewNamed(r.Uint64(), label)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	// Rejection sampling: accept only draws below the largest multiple of
	// un representable in 64 bits, so v % un is unbiased.
	limit := ^uint64(0) - ^uint64(0)%un
	for {
		if v := r.Uint64(); v < limit {
			return int(v % un)
		}
	}
}

// Bool returns a pseudo-random boolean.
func (r *Stream) Bool() bool { return r.Uint64()&1 == 1 }

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bits fills dst with pseudo-random bits, one bool per element.
func (r *Stream) Bits(dst []bool) {
	var w uint64
	for i := range dst {
		if i%64 == 0 {
			w = r.Uint64()
		}
		dst[i] = w&1 == 1
		w >>= 1
	}
}

// Words fills dst with pseudo-random 64-bit words.
func (r *Stream) Words(dst []uint64) {
	for i := range dst {
		dst[i] = r.Uint64()
	}
}
