// Package par provides the bounded worker-pool primitives behind every
// parallel loop in this repository: ordered fan-out over an index space,
// per-worker scratch state, and early abort on the first error.
//
// Determinism contract: the helpers distribute work items dynamically, so
// callers must make each item's result a pure function of its index (never
// of the worker that happened to run it) and write results into
// index-addressed slots. Under that contract every driver built on this
// package produces bit-identical output at any worker count — the property
// the exp-layer determinism tests pin down.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n if positive, otherwise
// runtime.NumCPU(). Every parallel option in this repository funnels
// through this so "0" uniformly means "all cores" and "1" means serial.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (0 = all cores). It aborts scheduling new items after the first error
// and returns the error with the lowest index among those observed, so
// error reporting is as stable as the abort semantics allow. With one
// worker (or n <= 1) it runs inline with zero goroutine overhead.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach for callers that keep per-worker scratch state
// (a simulator clone, a value buffer): fn additionally receives the worker
// slot in [0, workers) that is running the item. Slot w is only ever used
// by one goroutine at a time, so scratch indexed by it needs no locking.
// Work is handed out dynamically, so the mapping of items to slots varies
// between runs — results must depend on i only.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	next.Store(-1)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// Partition splits [0, n) into parts contiguous half-open ranges of
// near-equal size (the first n%parts ranges are one longer). Empty ranges
// are omitted, so the result has min(n, parts) entries. It is the standard
// way to batch a slice for ForEachWorker when per-item dispatch would be
// too fine-grained.
func Partition(n, parts int) [][2]int {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	size, rem := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + size
		if p < rem {
			hi++
		}
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}
