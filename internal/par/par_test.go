package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
	if err := ForEach(4, -5, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n<0: err=%v called=%v", err, called)
	}
}

func TestForEachAbortsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(4, 10000, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Early abort: the pool must not have drained the whole index space.
	if n := ran.Load(); n == 10000 {
		t.Fatalf("no early abort: all %d items ran", n)
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	// Serially the first failing index must win outright.
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(1, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("serial err = %v, want first error", err)
	}
}

func TestForEachWorkerSlotBounds(t *testing.T) {
	const workers, n = 3, 200
	var bad atomic.Int32
	if err := ForEachWorker(workers, n, func(w, i int) error {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d items saw a worker slot outside [0,%d)", bad.Load(), workers)
	}
}

func TestForEachWorkerScratchIsExclusive(t *testing.T) {
	// Per-slot scratch counters must never tear: each slot is owned by one
	// goroutine at a time, so plain int increments are safe.
	const workers, n = 4, 5000
	scratch := make([]int, workers)
	if err := ForEachWorker(workers, n, func(w, i int) error {
		scratch[w]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != n {
		t.Fatalf("scratch total = %d, want %d", total, n)
	}
}

func TestPartitionCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {3, 10}, {1, 1}, {100, 7}, {64, 64},
	} {
		ranges := Partition(tc.n, tc.parts)
		next := 0
		for _, r := range ranges {
			if r[0] != next {
				t.Fatalf("n=%d parts=%d: gap at %d (range %v)", tc.n, tc.parts, next, r)
			}
			if r[1] <= r[0] {
				t.Fatalf("n=%d parts=%d: empty range %v", tc.n, tc.parts, r)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d parts=%d: covered %d", tc.n, tc.parts, next)
		}
		if want := tc.parts; want > tc.n {
			want = tc.n
		} else if len(ranges) != tc.parts {
			t.Fatalf("n=%d parts=%d: %d ranges", tc.n, tc.parts, len(ranges))
		}
	}
	if Partition(0, 4) != nil || Partition(4, 0) != nil {
		t.Fatal("degenerate partitions should be nil")
	}
}
