package lfsr

import (
	"fmt"

	"orap/internal/gf2"
)

// Symbolic simulates the LFSR with GF(2)-linear expressions instead of
// bits: every cell holds a linear combination of "variables" (the seed
// bits injected so far). This is exactly the symbolic simulation the paper
// describes in attack scenario (d), and it doubles as the defender's tool
// for synthesizing key sequences, because the final state is
//
//	state = M · vars
//
// for the matrix M accumulated over the stepped schedule.
type Symbolic struct {
	cfg    Config
	nvars  int
	cells  []gf2.Vec // cells[i] = linear expression of cell i over vars
	isTap  []bool
	injIdx []int
}

// NewSymbolic returns a symbolic LFSR over nvars variables, starting from
// the all-zero (reset) state.
func NewSymbolic(cfg Config, nvars int) (*Symbolic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Symbolic{
		cfg:    cfg,
		nvars:  nvars,
		cells:  make([]gf2.Vec, cfg.N),
		isTap:  make([]bool, cfg.N),
		injIdx: make([]int, cfg.N),
	}
	for i := range s.cells {
		s.cells[i] = gf2.NewVec(nvars)
	}
	for i := range s.injIdx {
		s.injIdx[i] = -1
	}
	for _, t := range cfg.Taps {
		s.isTap[t] = true
	}
	for i, p := range cfg.Inject {
		s.injIdx[p] = i
	}
	return s, nil
}

// NumVars returns the number of symbolic variables.
func (s *Symbolic) NumVars() int { return s.nvars }

// Cell returns a copy of cell i's linear expression.
func (s *Symbolic) Cell(i int) gf2.Vec { return s.cells[i].Clone() }

// StepVars advances one clock, injecting variable seedVars[j] at injection
// point j. A negative entry means "no variable" (constant zero) at that
// point; a nil slice is a free-run cycle. Variable indices must be < NumVars.
func (s *Symbolic) StepVars(seedVars []int) error {
	if seedVars != nil && len(seedVars) != s.cfg.SeedWidth() {
		return fmt.Errorf("lfsr: seedVars width %d != %d", len(seedVars), s.cfg.SeedWidth())
	}
	next := make([]gf2.Vec, s.cfg.N)
	fb := s.cells[s.cfg.N-1]
	for i := 0; i < s.cfg.N; i++ {
		var e gf2.Vec
		if i == 0 {
			e = fb.Clone()
		} else {
			e = s.cells[i-1].Clone()
			if s.isTap[i] {
				e.Xor(fb)
			}
		}
		if j := s.injIdx[i]; j >= 0 && seedVars != nil {
			v := seedVars[j]
			if v >= s.nvars {
				return fmt.Errorf("lfsr: variable %d out of range (nvars=%d)", v, s.nvars)
			}
			if v >= 0 {
				e.FlipBit(v)
			}
		}
		next[i] = e
	}
	s.cells = next
	return nil
}

// StepExprs advances one clock, XOR-injecting an arbitrary linear
// expression at each injection point (nil entries inject nothing). This
// models the modified OraP scheme's response-driven points when the
// responses happen to be linear, and is used by tests.
func (s *Symbolic) StepExprs(exprs []gf2.Vec) error {
	if exprs != nil && len(exprs) != s.cfg.SeedWidth() {
		return fmt.Errorf("lfsr: exprs width %d != %d", len(exprs), s.cfg.SeedWidth())
	}
	next := make([]gf2.Vec, s.cfg.N)
	fb := s.cells[s.cfg.N-1]
	for i := 0; i < s.cfg.N; i++ {
		var e gf2.Vec
		if i == 0 {
			e = fb.Clone()
		} else {
			e = s.cells[i-1].Clone()
			if s.isTap[i] {
				e.Xor(fb)
			}
		}
		if j := s.injIdx[i]; j >= 0 && exprs != nil && exprs[j].Len() != 0 {
			e.Xor(exprs[j])
		}
		next[i] = e
	}
	s.cells = next
	return nil
}

// FreeRun advances n clocks with no injection.
func (s *Symbolic) FreeRun(n int) {
	for i := 0; i < n; i++ {
		s.StepVars(nil)
	}
}

// Matrix returns the N×NumVars matrix M with state = M · vars for the
// schedule stepped so far.
func (s *Symbolic) Matrix() *gf2.Matrix {
	m := gf2.NewMatrix(s.cfg.N, s.nvars)
	for i, c := range s.cells {
		m.SetRow(i, c)
	}
	return m
}

// Schedule describes an unlock sequence: len(FreeRunAfter) seeds are fed,
// with FreeRunAfter[i] free-run cycles after seed i (the last entry gives
// the free-run cycles after the final seed, which the paper allows too).
type Schedule struct {
	FreeRunAfter []int
}

// NumSeeds returns the number of seeded cycles.
func (sc Schedule) NumSeeds() int { return len(sc.FreeRunAfter) }

// TotalCycles returns the number of clock cycles the schedule takes.
func (sc Schedule) TotalCycles() int {
	t := len(sc.FreeRunAfter)
	for _, f := range sc.FreeRunAfter {
		t += f
	}
	return t
}

// UniformSchedule returns a schedule of `seeds` seeded cycles with the same
// number of free-run cycles after each.
func UniformSchedule(seeds, freeRun int) Schedule {
	fr := make([]int, seeds)
	for i := range fr {
		fr[i] = freeRun
	}
	return Schedule{FreeRunAfter: fr}
}

// TransferMatrix computes the linear map from all injected seed bits to the
// final LFSR state for the given schedule: it returns M such that
//
//	finalState = M · seeds
//
// where seeds stacks the seed words in feeding order (seed i occupies
// variable indices [i·w, (i+1)·w) for w = cfg.SeedWidth()).
func TransferMatrix(cfg Config, sc Schedule) (*gf2.Matrix, error) {
	w := cfg.SeedWidth()
	sym, err := NewSymbolic(cfg, w*sc.NumSeeds())
	if err != nil {
		return nil, err
	}
	for i, fr := range sc.FreeRunAfter {
		vars := make([]int, w)
		for j := range vars {
			vars[j] = i*w + j
		}
		if err := sym.StepVars(vars); err != nil {
			return nil, err
		}
		sym.FreeRun(fr)
	}
	return sym.Matrix(), nil
}

// MemTransferMatrix computes the linear map from memory-seed bits to the
// final LFSR state for a schedule where injection happens on seeded cycles
// only at the given positions (indices into cfg.Inject) — the memory-driven
// subset of the reseeding points in the OraP schemes. The returned matrix M
// satisfies finalState = M · seeds with seed i occupying variable indices
// [i·w, (i+1)·w) for w = len(memInject). Its GF(2) rank is the effective
// key entropy of the schedule: rank < cfg.N means some register states are
// unreachable from memory, shrinking the key space an attacker must search.
func MemTransferMatrix(cfg Config, sc Schedule, memInject []int) (*gf2.Matrix, error) {
	w := len(memInject)
	sym, err := NewSymbolic(cfg, w*sc.NumSeeds())
	if err != nil {
		return nil, err
	}
	full := make([]int, len(cfg.Inject))
	for i, fr := range sc.FreeRunAfter {
		for j := range full {
			full[j] = -1
		}
		for j, pos := range memInject {
			if pos < 0 || pos >= len(cfg.Inject) {
				return nil, fmt.Errorf("lfsr: memInject position %d out of range (have %d injection points)", pos, len(cfg.Inject))
			}
			full[pos] = i*w + j
		}
		if err := sym.StepVars(full); err != nil {
			return nil, err
		}
		sym.FreeRun(fr)
	}
	return sym.Matrix(), nil
}

// RunSchedule feeds the given seeds through a concrete LFSR following the
// schedule and returns the final state. len(seeds) must equal sc.NumSeeds()
// and every seed must have cfg.SeedWidth() bits.
func RunSchedule(cfg Config, sc Schedule, seeds []gf2.Vec) (gf2.Vec, error) {
	if len(seeds) != sc.NumSeeds() {
		return gf2.Vec{}, fmt.Errorf("lfsr: %d seeds for a %d-seed schedule", len(seeds), sc.NumSeeds())
	}
	l, err := New(cfg)
	if err != nil {
		return gf2.Vec{}, err
	}
	for i, fr := range sc.FreeRunAfter {
		if err := l.Step(seeds[i]); err != nil {
			return gf2.Vec{}, err
		}
		l.FreeRun(fr)
	}
	return l.State(), nil
}
