// Package lfsr models the key-register LFSR at the heart of the OraP
// scheme (Fig. 1 of the paper).
//
// The register is a Galois-style linear feedback shift register with two
// kinds of XOR points:
//
//   - feedback taps defined by the characteristic polynomial (the paper
//     uses "a new tap after every eight LFSR cells"), and
//   - reseeding points through which multi-bit seeds from the tamper-proof
//     memory (the "key sequence") are XOR-injected while the register
//     shifts.
//
// Unlocking is a multi-cycle process: seeds interleaved with free-run
// cycles are fed in; the final register state is the circuit key. Because
// the register is linear, the package also provides a symbolic simulator
// that expresses every cell as a GF(2)-linear combination of the injected
// bits. The defender uses it to synthesize key sequences (orap package);
// the attacker of scenario (d) uses it to size the XOR trees a Trojan
// would need (trojan package).
package lfsr

import (
	"fmt"

	"orap/internal/gf2"
)

// Config describes the wiring of a key-register LFSR.
type Config struct {
	// N is the number of cells (= key width).
	N int
	// Taps lists the cell indices whose input XORs the feedback bit
	// (the last cell's output). Cell 0 always receives the feedback.
	Taps []int
	// Inject lists the cell indices that have a reseeding XOR point.
	// The seed word fed at each seeded cycle has len(Inject) bits,
	// seed bit i entering at cell Inject[i].
	Inject []int
}

// StandardTaps returns tap positions with one tap every `spacing` cells,
// matching the paper's polynomial choice (spacing 8). Cell 0's implicit
// feedback is not included in the returned list.
func StandardTaps(n, spacing int) []int {
	var taps []int
	for i := spacing; i < n; i += spacing {
		taps = append(taps, i)
	}
	return taps
}

// AllInject returns injection points at every cell, the "most general case"
// of Fig. 1.
func AllInject(n int) []int {
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	return pts
}

// EveryKthInject returns injection points at cells 0, k, 2k, ….
func EveryKthInject(n, k int) []int {
	var pts []int
	for i := 0; i < n; i += k {
		pts = append(pts, i)
	}
	return pts
}

// Validate checks the configuration for out-of-range or duplicate indices.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("lfsr: N must be positive, got %d", c.N)
	}
	seen := make(map[int]bool)
	for _, t := range c.Taps {
		if t <= 0 || t >= c.N {
			return fmt.Errorf("lfsr: tap %d out of range (1..%d)", t, c.N-1)
		}
		if seen[t] {
			return fmt.Errorf("lfsr: duplicate tap %d", t)
		}
		seen[t] = true
	}
	seen = make(map[int]bool)
	for _, p := range c.Inject {
		if p < 0 || p >= c.N {
			return fmt.Errorf("lfsr: injection point %d out of range (0..%d)", p, c.N-1)
		}
		if seen[p] {
			return fmt.Errorf("lfsr: duplicate injection point %d", p)
		}
		seen[p] = true
	}
	return nil
}

// SeedWidth returns the number of bits injected per seeded cycle.
func (c Config) SeedWidth() int { return len(c.Inject) }

// LFSR is a concrete (bit-valued) key-register LFSR.
type LFSR struct {
	cfg    Config
	state  gf2.Vec
	isTap  []bool
	injIdx []int // cell -> seed-bit index, -1 when not an injection point
}

// New returns an LFSR in the all-zero state (the state after a
// pulse-generator reset).
func New(cfg Config) (*LFSR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &LFSR{
		cfg:    cfg,
		state:  gf2.NewVec(cfg.N),
		isTap:  make([]bool, cfg.N),
		injIdx: make([]int, cfg.N),
	}
	for i := range l.injIdx {
		l.injIdx[i] = -1
	}
	for _, t := range cfg.Taps {
		l.isTap[t] = true
	}
	for i, p := range cfg.Inject {
		l.injIdx[p] = i
	}
	return l, nil
}

// Config returns the wiring description.
func (l *LFSR) Config() Config { return l.cfg }

// Reset clears the register to all zeros, modelling the per-cell
// pulse-generator reset on a scan-enable rising edge.
func (l *LFSR) Reset() {
	l.state = gf2.NewVec(l.cfg.N)
}

// State returns a copy of the current register contents.
func (l *LFSR) State() gf2.Vec { return l.state.Clone() }

// SetState overwrites the register contents (used in tests and in Trojan
// scenarios where the attacker preserves the state).
func (l *LFSR) SetState(s gf2.Vec) error {
	if s.Len() != l.cfg.N {
		return fmt.Errorf("lfsr: state width %d != N %d", s.Len(), l.cfg.N)
	}
	l.state = s.Clone()
	return nil
}

// Step advances the register one clock with the given seed word XORed in at
// the injection points. A nil or all-zero seed is a free-run cycle.
// The seed must have SeedWidth bits when non-nil.
func (l *LFSR) Step(seed gf2.Vec) error {
	if seed.Len() != 0 && seed.Len() != l.cfg.SeedWidth() {
		return fmt.Errorf("lfsr: seed width %d != %d", seed.Len(), l.cfg.SeedWidth())
	}
	next := gf2.NewVec(l.cfg.N)
	fb := l.state.Bit(l.cfg.N - 1)
	for i := 0; i < l.cfg.N; i++ {
		var v bool
		if i == 0 {
			v = fb
		} else {
			v = l.state.Bit(i - 1)
			if l.isTap[i] {
				v = v != fb
			}
		}
		if j := l.injIdx[i]; j >= 0 && seed.Len() != 0 {
			v = v != seed.Bit(j)
		}
		next.SetBit(i, v)
	}
	l.state = next
	return nil
}

// FreeRun advances the register n clocks with no injection.
func (l *LFSR) FreeRun(n int) {
	for i := 0; i < n; i++ {
		l.Step(gf2.Vec{})
	}
}

// StepExternal advances one clock with per-cell external XOR values, used
// by the modified OraP scheme (Fig. 3) where circuit responses drive half
// the reseeding points. ext[i] is XORed into injection point i; ext must
// have SeedWidth bits.
func (l *LFSR) StepExternal(ext gf2.Vec) error { return l.Step(ext) }
