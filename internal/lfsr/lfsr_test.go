package lfsr

import (
	"testing"

	"orap/internal/gf2"
	"orap/internal/rng"
)

func cfg16() Config {
	return Config{N: 16, Taps: StandardTaps(16, 8), Inject: AllInject(16)}
}

func randSeed(r *rng.Stream, w int) gf2.Vec {
	v := gf2.NewVec(w)
	for i := 0; i < w; i++ {
		if r.Bool() {
			v.SetBit(i, true)
		}
	}
	return v
}

func TestConfigValidate(t *testing.T) {
	if err := cfg16().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 0},
		{N: 8, Taps: []int{0}},      // tap 0 is implicit, not allowed
		{N: 8, Taps: []int{8}},      // out of range
		{N: 8, Taps: []int{3, 3}},   // duplicate
		{N: 8, Inject: []int{-1}},   // out of range
		{N: 8, Inject: []int{2, 2}}, // duplicate
		{N: 8, Inject: []int{8}},    // out of range
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStandardTapsSpacing(t *testing.T) {
	taps := StandardTaps(256, 8)
	if len(taps) != 31 {
		t.Fatalf("expected 31 taps for N=256 spacing=8, got %d", len(taps))
	}
	for i, tap := range taps {
		if tap != (i+1)*8 {
			t.Fatalf("tap %d = %d, want %d", i, tap, (i+1)*8)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	l, err := New(cfg16())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	l.Step(randSeed(r, 16))
	if l.State().IsZero() {
		t.Skip("seed happened to be zero") // astronomically unlikely with 16 bits
	}
	l.Reset()
	if !l.State().IsZero() {
		t.Fatal("Reset did not clear state")
	}
}

func TestFreeRunFromZeroStaysZero(t *testing.T) {
	l, _ := New(cfg16())
	l.FreeRun(100)
	if !l.State().IsZero() {
		t.Fatal("LFSR left the zero state without injection")
	}
}

func TestStepIsLinear(t *testing.T) {
	// LFSR(a ^ b) after k steps == LFSR(a) ^ LFSR(b): linearity of the
	// whole machine, the property the paper's attack (d) exploits.
	cfg := cfg16()
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		seedsA := []gf2.Vec{randSeed(r, 16), randSeed(r, 16), randSeed(r, 16)}
		seedsB := []gf2.Vec{randSeed(r, 16), randSeed(r, 16), randSeed(r, 16)}
		seedsAB := make([]gf2.Vec, 3)
		for i := range seedsAB {
			seedsAB[i] = seedsA[i].Clone()
			seedsAB[i].Xor(seedsB[i])
		}
		sc := UniformSchedule(3, 2)
		sa, err := RunSchedule(cfg, sc, seedsA)
		if err != nil {
			t.Fatal(err)
		}
		sb, _ := RunSchedule(cfg, sc, seedsB)
		sab, _ := RunSchedule(cfg, sc, seedsAB)
		sum := sa.Clone()
		sum.Xor(sb)
		if !sum.Equal(sab) {
			t.Fatalf("trial %d: LFSR is not linear", trial)
		}
	}
}

func TestSymbolicMatchesConcrete(t *testing.T) {
	cfg := Config{N: 24, Taps: StandardTaps(24, 8), Inject: EveryKthInject(24, 2)}
	sc := Schedule{FreeRunAfter: []int{0, 3, 1, 5}}
	w := cfg.SeedWidth()

	m, err := TransferMatrix(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for trial := 0; trial < 25; trial++ {
		seeds := make([]gf2.Vec, sc.NumSeeds())
		stacked := gf2.NewVec(w * sc.NumSeeds())
		for i := range seeds {
			seeds[i] = randSeed(r, w)
			for j := 0; j < w; j++ {
				if seeds[i].Bit(j) {
					stacked.SetBit(i*w+j, true)
				}
			}
		}
		concrete, err := RunSchedule(cfg, sc, seeds)
		if err != nil {
			t.Fatal(err)
		}
		symbolic := m.MulVec(stacked)
		if !concrete.Equal(symbolic) {
			t.Fatalf("trial %d: symbolic state %v != concrete %v", trial, symbolic, concrete)
		}
	}
}

func TestTransferMatrixFullRankWithEnoughSeeds(t *testing.T) {
	// With injection at every cell, a single seed already spans the state
	// space, so the transfer matrix must have full rank N: every key is
	// reachable by some key sequence.
	cfg := cfg16()
	m, err := TransferMatrix(cfg, UniformSchedule(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Rank(); got != 16 {
		t.Fatalf("rank = %d, want 16", got)
	}
}

func TestTransferMatrixSparseInjectionNeedsMoreSeeds(t *testing.T) {
	// With injection every 4 cells (width 4), one seed cannot reach all
	// 16-bit states, but enough seeded cycles with mixing can.
	cfg := Config{N: 16, Taps: StandardTaps(16, 8), Inject: EveryKthInject(16, 4)}
	m1, err := TransferMatrix(cfg, UniformSchedule(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Rank() >= 16 {
		t.Fatalf("one 4-bit seed cannot give rank 16, got %d", m1.Rank())
	}
	m4, err := TransferMatrix(cfg, UniformSchedule(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m4.Rank() != 16 {
		t.Fatalf("4 back-to-back seeds should reach full rank, got %d", m4.Rank())
	}
	// A seed period sharing a factor with the injection spacing aliases:
	// with one free-run cycle between seeds (period 2, spacing 4), seed
	// bits only ever reach half the cells, capping the rank at 8. This is
	// why the designer must co-pick spacing and free-run counts.
	m8, err := TransferMatrix(cfg, UniformSchedule(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m8.Rank() != 8 {
		t.Fatalf("aliased schedule rank = %d, want 8", m8.Rank())
	}
}

func TestSeedWidthChecked(t *testing.T) {
	l, _ := New(cfg16())
	if err := l.Step(gf2.NewVec(5)); err == nil {
		t.Fatal("Step accepted wrong seed width")
	}
	if _, err := RunSchedule(cfg16(), UniformSchedule(2, 0), []gf2.Vec{gf2.NewVec(16)}); err == nil {
		t.Fatal("RunSchedule accepted wrong seed count")
	}
}

func TestSetState(t *testing.T) {
	l, _ := New(cfg16())
	s := gf2.NewVec(16)
	s.SetBit(5, true)
	if err := l.SetState(s); err != nil {
		t.Fatal(err)
	}
	if !l.State().Equal(s) {
		t.Fatal("SetState did not stick")
	}
	if err := l.SetState(gf2.NewVec(8)); err == nil {
		t.Fatal("SetState accepted wrong width")
	}
}

func TestScheduleAccounting(t *testing.T) {
	sc := Schedule{FreeRunAfter: []int{2, 0, 5}}
	if sc.NumSeeds() != 3 {
		t.Fatalf("NumSeeds = %d", sc.NumSeeds())
	}
	if sc.TotalCycles() != 3+7 {
		t.Fatalf("TotalCycles = %d, want 10", sc.TotalCycles())
	}
}

func TestSymbolicStepExprs(t *testing.T) {
	// Injecting expression e at a point and later reading it back through
	// shifting must preserve linearity.
	cfg := Config{N: 4, Inject: []int{0}}
	s, err := NewSymbolic(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := gf2.NewVec(2)
	e.SetBit(0, true)
	e.SetBit(1, true)
	if err := s.StepExprs([]gf2.Vec{e}); err != nil {
		t.Fatal(err)
	}
	if !s.Cell(0).Equal(e) {
		t.Fatalf("cell 0 = %v, want %v", s.Cell(0), e)
	}
	s.FreeRun(2)
	if !s.Cell(2).Equal(e) {
		t.Fatalf("after 2 shifts, cell 2 = %v, want %v", s.Cell(2), e)
	}
}

func TestSymbolicRejectsBadVariable(t *testing.T) {
	cfg := Config{N: 4, Inject: []int{0}}
	s, _ := NewSymbolic(cfg, 2)
	if err := s.StepVars([]int{5}); err == nil {
		t.Fatal("StepVars accepted out-of-range variable")
	}
}

func BenchmarkTransferMatrix256(b *testing.B) {
	cfg := Config{N: 256, Taps: StandardTaps(256, 8), Inject: AllInject(256)}
	sc := UniformSchedule(4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TransferMatrix(cfg, sc); err != nil {
			b.Fatal(err)
		}
	}
}
