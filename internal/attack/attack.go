// Package attack implements the oracle-guided logic-locking attacks the
// OraP paper defends against:
//
//   - the SAT attack of Subramanyan, Ray and Malik (HOST'15),
//   - Double DIP (Shen & Zhou, GLSVLSI'17), a strengthened DIP search,
//   - AppSAT (Shamsi et al., HOST'17), approximate deobfuscation,
//   - the hill-climbing attack (Plaza & Markov, TC'15), and
//   - key sensitization (Yasin et al., TCAD'16).
//
// Every attack sees the locked netlist plus a black-box oracle.Oracle.
// Against an unprotected chip (oracle.Comb) they recover the key or an
// equivalent one; against the OraP-gated oracle the observations describe
// the locked circuit, so the attacks converge to keys that fail functional
// equivalence — exactly the behaviour the paper's Section II-A argues.
package attack

import (
	"fmt"
	"math/bits"

	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/sim"
)

// Result reports an attack's outcome.
type Result struct {
	// Key is the recovered key (nil when the attack failed to produce one).
	Key []bool
	// Iterations counts attack rounds (DIPs for SAT-family attacks,
	// restarts/improvement steps for hill climbing).
	Iterations int
	// OracleQueries counts oracle accesses consumed by the attack.
	OracleQueries int
	// Channel holds oracle-channel telemetry (unique patterns, cache
	// hits, scan cycles) when the attack ran against an oracle.Session;
	// zero otherwise.
	Channel oracle.ChannelStats
	// SolverStats aggregates SAT effort, when a solver was involved.
	SolverStats sat.Stats
	// Converged reports whether the attack terminated by its own
	// criterion (e.g. miter UNSAT) rather than a budget.
	Converged bool
}

// channelStats extracts channel telemetry from oracles that keep it
// (oracle.Session, or anything exposing Stats()).
func channelStats(o oracle.Oracle) oracle.ChannelStats {
	if s, ok := o.(interface{ Stats() oracle.ChannelStats }); ok {
		return s.Stats()
	}
	return oracle.ChannelStats{}
}

// finish stamps the oracle-derived fields of a result on the way out.
func (res *Result) finish(o oracle.Oracle) {
	res.OracleQueries = o.Queries()
	res.Channel = channelStats(o)
}

// Budgets bounds attack effort so experiments terminate even when a
// defense makes an attack diverge.
type Budgets struct {
	// MaxIterations bounds attack rounds (0 = default).
	MaxIterations int
	// MaxConflicts bounds total SAT conflicts (0 = unlimited).
	MaxConflicts int64
}

func (b Budgets) iterations(def int) int {
	if b.MaxIterations > 0 {
		return b.MaxIterations
	}
	return def
}

// ErrIterationBudget reports that an attack hit its round limit without
// converging.
var ErrIterationBudget = fmt.Errorf("attack: iteration budget exhausted")

// VerifyKey checks with SAT whether the locked circuit under the candidate
// key is functionally equivalent to the reference (original) circuit: it
// returns true when no input distinguishes them. This is the experiment
// harness's success criterion ("the correct or an equivalent key").
func VerifyKey(locked, reference *netlist.Circuit, key []bool) (bool, error) {
	if len(key) != locked.NumKeys() {
		return false, fmt.Errorf("attack: key width %d != %d", len(key), locked.NumKeys())
	}
	if reference.NumKeys() != 0 {
		return false, fmt.Errorf("attack: reference circuit %q has key inputs", reference.Name)
	}
	if locked.NumInputs() != reference.NumInputs() || locked.NumOutputs() != reference.NumOutputs() {
		return false, fmt.Errorf("attack: locked/reference shapes differ")
	}
	s := sat.New()
	li, err := encodeLockedWithKey(s, locked, key)
	if err != nil {
		return false, err
	}
	ri, err := encodeShared(s, reference, li.PIVars)
	if err != nil {
		return false, err
	}
	// Outputs must be able to differ for NON-equivalence.
	diffs := make([]sat.Lit, 0, len(li.POVars))
	for i := range li.POVars {
		d := sat.MkLit(s.NewVar(), false)
		addXor2(s, d, sat.MkLit(li.POVars[i], false), sat.MkLit(ri.POVars[i], false))
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	satisfiable, err := s.Solve()
	if err != nil {
		return false, err
	}
	return !satisfiable, nil
}

// SampleDisagreement estimates the fraction of random inputs on which the
// locked circuit under key disagrees (in at least one output bit) with the
// oracle; used by AppSAT's settlement test and by reporting. Patterns go
// through the oracle's word channel in batches of up to 64, and the
// candidate key evaluates word-parallel over the same batches.
func SampleDisagreement(locked *netlist.Circuit, key []bool, o oracle.Oracle, samples int, r *rng.Stream) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("attack: non-positive sample count %d", samples)
	}
	p, err := sim.NewParallel(locked, 1)
	if err != nil {
		return 0, err
	}
	defer p.Release()
	if err := p.SetKey(key); err != nil {
		return 0, err
	}
	prog := p.Program()
	bad := 0
	x := make([]bool, locked.NumInputs())
	in := make([]uint64, locked.NumInputs())
	for done := 0; done < samples; {
		n := samples - done
		if n > 64 {
			n = 64
		}
		for i := range in {
			in[i] = 0
		}
		// One r.Bits draw per pattern, in pattern order, exactly as the
		// scalar loop drew them — fixed-seed results stay bit-identical.
		for pat := 0; pat < n; pat++ {
			r.Bits(x)
			oracle.PackPattern(in, pat, x)
		}
		want, err := oracle.QueryWords(o, in, n)
		if err != nil {
			return 0, err
		}
		for i, id := range prog.PIs {
			p.SetInput(int(id), in[i:i+1])
		}
		p.Run()
		var diff uint64
		for j, id := range prog.POs {
			diff |= want[j] ^ p.Value(int(id))[0]
		}
		diff &= oracle.LaneMask(n)
		bad += bits.OnesCount64(diff)
		done += n
	}
	return float64(bad) / float64(samples), nil
}
