package attack

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/sim"
)

// doubleDIPSettleSamples is the number of deterministic random queries per
// settlement round. Enough to catch a surviving wrong-key class on
// traditional locking (which disagrees on a large input fraction) while a
// point-function tail — wrong on ~1 of 2^n patterns — settles clean, so the
// exponential-tail skip that motivates Double DIP is preserved.
const doubleDIPSettleSamples = 32

// DoubleDIP runs the Double-DIP attack: each iteration searches for an
// input pattern that simultaneously distinguishes two *distinct* key pairs
// (a "2-DIP"), so every query eliminates at least two wrong-key
// equivalence classes. Like the published attack it *stops* when no 2-DIP
// exists and extracts a key consistent with the observations: on compound
// defenses (traditional locking + SARLock-style point function) the
// traditional portion is fully resolved while the point-function tail —
// which only ordinary one-key DIPs could drain, at one key per query — is
// skipped, so the returned key is approximately correct (wrong on at most
// a couple of input patterns) after exponentially fewer queries than the
// plain SAT attack.
func DoubleDIP(locked *netlist.Circuit, o oracle.Oracle, b Budgets) (*Result, error) {
	if o.NumInputs() != locked.NumInputs() || o.NumOutputs() != locked.NumOutputs() {
		return nil, fmt.Errorf("attack: oracle shape mismatch")
	}
	s := sat.New()
	s.MaxConflicts = b.MaxConflicts
	// Two miters sharing the primary inputs: (k1,k2) and (k3,k4).
	m1, err := cnf.NewMiter(s, locked)
	if err != nil {
		return nil, err
	}
	m2, err := cnf.NewMiterShared(s, m1)
	if err != nil {
		return nil, err
	}
	// Require the four key copies to be pairwise distinct across the two
	// pairs (k1≠k3, k1≠k4, k2≠k3, k2≠k4; within-pair distinctness is
	// implied by the output disequality). On a pure point-function
	// defense both pairs would need a key equal to the input pattern,
	// which distinctness forbids — hence no 2-DIP survives there.
	actPair := s.NewVar()
	for _, pair := range [][2][]sat.Var{
		{m1.Key1, m2.Key1}, {m1.Key1, m2.Key2},
		{m1.Key2, m2.Key1}, {m1.Key2, m2.Key2},
	} {
		diff := make([]sat.Lit, 0, len(pair[0])+1)
		diff = append(diff, sat.MkLit(actPair, true))
		for i := range pair[0] {
			d := sat.MkLit(s.NewVar(), false)
			addXor2(s, d, sat.MkLit(pair[0][i], false), sat.MkLit(pair[1][i], false))
			diff = append(diff, d)
		}
		s.AddClause(diff...)
	}

	res := &Result{}
	maxIter := b.iterations(10000)
	record := func(x []bool, y []bool) error {
		if err := m1.AddIOConstraint(x, y); err != nil {
			return err
		}
		return m2.AddIOConstraint(x, y)
	}
	// Settlement validation evaluates candidate keys word-parallel on the
	// miter's compiled program; the random stream is fixed-seeded so the
	// attack stays run-to-run and worker-count deterministic.
	ev, err := sim.ForProgram(m1.Prog, 1)
	if err != nil {
		return nil, err
	}
	defer ev.Release()
	settleRand := rng.NewNamed(0x2d1b, "attack/doubledip-settle")
	settleRounds := 0
	for {
		// Phase 1: drain 2-DIPs (both miters differ, pairs distinct).
		for {
			if res.Iterations >= maxIter {
				res.SolverStats = s.Stats()
				res.finish(o)
				return res, ErrIterationBudget
			}
			satisfiable, err := s.Solve(m1.AssumeDiff(), m2.AssumeDiff(), sat.MkLit(actPair, false))
			if err != nil {
				res.SolverStats = s.Stats()
				return res, err
			}
			if !satisfiable {
				break // no 2-DIP left: settle with a consistent key
			}
			x := m1.ExtractInputs()
			y, err := o.Query(x)
			if err == nil {
				err = record(x, y)
			}
			if err != nil {
				res.SolverStats = s.Stats()
				res.finish(o)
				return res, err
			}
			res.Iterations++
		}
		// Phase 2: extract a consistent key and validate it on a sample of
		// random queries. A wrong-key class that survives the 2-DIP loop on
		// traditional locking (no second disjoint pair left to distinguish
		// it) disagrees with the oracle on a large fraction of inputs and is
		// caught here; each disagreement is reinforced as an IO constraint
		// and the search resumes. Point-function tails settle clean.
		satisfiable, err := s.Solve(m1.AssumeNoDiff(), m2.AssumeNoDiff(), sat.MkLit(actPair, true))
		if err != nil {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, err
		}
		if !satisfiable {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, fmt.Errorf("attack: observations inconsistent with locked netlist (no candidate key)")
		}
		key := m1.ExtractKey1()
		if err := ev.SetKey(key); err != nil {
			return res, err
		}
		prog := ev.Program()
		disagreements := 0
		xr := make([]bool, locked.NumInputs())
		yr := make([]bool, locked.NumOutputs())
		in := make([]uint64, locked.NumInputs())
		for done := 0; done < doubleDIPSettleSamples; {
			n := doubleDIPSettleSamples - done
			if n > 64 {
				n = 64
			}
			for i := range in {
				in[i] = 0
			}
			for pat := 0; pat < n; pat++ {
				settleRand.Bits(xr)
				oracle.PackPattern(in, pat, xr)
			}
			want, err := oracle.QueryWords(o, in, n)
			if err != nil {
				res.SolverStats = s.Stats()
				res.finish(o)
				return res, err
			}
			for i, id := range prog.PIs {
				ev.SetInput(int(id), in[i:i+1])
			}
			ev.Run()
			var diff uint64
			for j, id := range prog.POs {
				diff |= want[j] ^ ev.Value(int(id))[0]
			}
			diff &= oracle.LaneMask(n)
			// Disagreements recorded in ascending lane order — the scalar
			// discovery order — so fixed-seed runs stay bit-identical.
			for pat := 0; pat < n; pat++ {
				if diff>>uint(pat)&1 == 0 {
					continue
				}
				disagreements++
				oracle.UnpackPattern(in, pat, xr)
				oracle.UnpackPattern(want, pat, yr)
				if err := record(append([]bool(nil), xr...), append([]bool(nil), yr...)); err != nil {
					return res, err
				}
			}
			done += n
		}
		if disagreements == 0 {
			res.SolverStats = s.Stats()
			res.finish(o)
			res.Key = key
			res.Converged = true
			return res, nil
		}
		settleRounds++
		if settleRounds >= maxIter {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, ErrIterationBudget
		}
	}
}
