package attack

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/sat"
)

// DoubleDIP runs the Double-DIP attack: each iteration searches for an
// input pattern that simultaneously distinguishes two *distinct* key pairs
// (a "2-DIP"), so every query eliminates at least two wrong-key
// equivalence classes. Like the published attack it *stops* when no 2-DIP
// exists and extracts a key consistent with the observations: on compound
// defenses (traditional locking + SARLock-style point function) the
// traditional portion is fully resolved while the point-function tail —
// which only ordinary one-key DIPs could drain, at one key per query — is
// skipped, so the returned key is approximately correct (wrong on at most
// a couple of input patterns) after exponentially fewer queries than the
// plain SAT attack.
func DoubleDIP(locked *netlist.Circuit, o oracle.Oracle, b Budgets) (*Result, error) {
	if o.NumInputs() != locked.NumInputs() || o.NumOutputs() != locked.NumOutputs() {
		return nil, fmt.Errorf("attack: oracle shape mismatch")
	}
	s := sat.New()
	s.MaxConflicts = b.MaxConflicts
	// Two miters sharing the primary inputs: (k1,k2) and (k3,k4).
	m1, err := cnf.NewMiter(s, locked)
	if err != nil {
		return nil, err
	}
	m2, err := newMiterShared(s, m1)
	if err != nil {
		return nil, err
	}
	// Require the four key copies to be pairwise distinct across the two
	// pairs (k1≠k3, k1≠k4, k2≠k3, k2≠k4; within-pair distinctness is
	// implied by the output disequality). On a pure point-function
	// defense both pairs would need a key equal to the input pattern,
	// which distinctness forbids — hence no 2-DIP survives there.
	actPair := s.NewVar()
	for _, pair := range [][2][]sat.Var{
		{m1.Key1, m2.Key1}, {m1.Key1, m2.Key2},
		{m1.Key2, m2.Key1}, {m1.Key2, m2.Key2},
	} {
		diff := make([]sat.Lit, 0, len(pair[0])+1)
		diff = append(diff, sat.MkLit(actPair, true))
		for i := range pair[0] {
			d := sat.MkLit(s.NewVar(), false)
			addXor2(s, d, sat.MkLit(pair[0][i], false), sat.MkLit(pair[1][i], false))
			diff = append(diff, d)
		}
		s.AddClause(diff...)
	}

	res := &Result{}
	maxIter := b.iterations(10000)
	record := func(x []bool) error {
		y, err := o.Query(x)
		if err != nil {
			return err
		}
		if err := m1.AddIOConstraint(x, y); err != nil {
			return err
		}
		return m2.AddIOConstraint(x, y)
	}
	for {
		if res.Iterations >= maxIter {
			res.SolverStats = s.Stats()
			return res, ErrIterationBudget
		}
		// Phase 1: look for a 2-DIP (both miters differ, pairs distinct).
		satisfiable, err := s.Solve(m1.AssumeDiff(), m2.AssumeDiff(), sat.MkLit(actPair, false))
		if err != nil {
			res.SolverStats = s.Stats()
			return res, err
		}
		if !satisfiable {
			break // no 2-DIP left: settle with a consistent key
		}
		if err := record(m1.ExtractInputs()); err != nil {
			res.SolverStats = s.Stats()
			res.OracleQueries = o.Queries()
			return res, err
		}
		res.Iterations++
	}
	satisfiable, err := s.Solve(m1.AssumeNoDiff(), m2.AssumeNoDiff(), sat.MkLit(actPair, true))
	res.SolverStats = s.Stats()
	res.OracleQueries = o.Queries()
	if err != nil {
		return res, err
	}
	if !satisfiable {
		return res, fmt.Errorf("attack: observations inconsistent with locked netlist (no candidate key)")
	}
	res.Key = m1.ExtractKey1()
	res.Converged = true
	return res, nil
}

// newMiterShared builds a second miter over base's compiled program whose
// primary inputs reuse base's variables, for multi-miter formulations.
func newMiterShared(s *sat.Solver, base *cnf.Miter) (*cnf.Miter, error) {
	piVars := base.PIVars
	a, err := cnf.EncodeProgram(s, base.Prog, cnf.Options{PIVars: piVars})
	if err != nil {
		return nil, err
	}
	bb, err := cnf.EncodeProgram(s, base.Prog, cnf.Options{PIVars: piVars})
	if err != nil {
		return nil, err
	}
	m := &cnf.Miter{
		S:       s,
		Circuit: base.Circuit,
		Prog:    base.Prog,
		PIVars:  piVars,
		Key1:    a.KeyVars,
		Key2:    bb.KeyVars,
		Out1:    a.POVars,
		Out2:    bb.POVars,
		Act:     s.NewVar(),
	}
	diffs := make([]sat.Lit, 0, len(a.POVars)+1)
	diffs = append(diffs, sat.MkLit(m.Act, true))
	for i := range a.POVars {
		d := sat.MkLit(s.NewVar(), false)
		addXor2(s, d, sat.MkLit(a.POVars[i], false), sat.MkLit(bb.POVars[i], false))
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	return m, nil
}
