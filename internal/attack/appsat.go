package attack

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/sim"
)

// AppSATOptions tunes the approximate SAT attack.
type AppSATOptions struct {
	Budgets
	// RoundsPerSettle is the number of DIP rounds between settlement
	// checks (default 8).
	RoundsPerSettle int
	// SettleSamples is the number of random queries per settlement check
	// (default 64).
	SettleSamples int
	// ErrorThreshold is the disagreement fraction below which the attack
	// settles and reports an approximate key (default 0, i.e. exact on
	// the sampled set).
	ErrorThreshold float64
	// Rand drives the random settlement queries; required.
	Rand *rng.Stream
}

// AppSAT runs the approximate SAT attack of Shamsi et al.: ordinary DIP
// rounds interleaved with random-query settlement checks. When the
// observed disagreement over a random sample drops to the threshold, the
// attack stops early and reports the current candidate key, which for
// point-function defenses (SARLock-style) is an approximate key that is
// wrong on only a vanishing fraction of inputs. Random queries that
// disagree are added as constraints, reinforcing convergence.
func AppSAT(locked *netlist.Circuit, o oracle.Oracle, opts AppSATOptions) (*Result, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("attack: AppSAT requires a random stream")
	}
	if opts.RoundsPerSettle <= 0 {
		opts.RoundsPerSettle = 8
	}
	if opts.SettleSamples <= 0 {
		opts.SettleSamples = 64
	}
	s := sat.New()
	s.MaxConflicts = opts.MaxConflicts
	m, err := cnf.NewMiter(s, locked)
	if err != nil {
		return nil, err
	}
	// Settlement evaluates the candidate key word-parallel on the miter's
	// compiled program; no second compile of the locked circuit.
	ev, err := sim.ForProgram(m.Prog, 1)
	if err != nil {
		return nil, err
	}
	defer ev.Release()
	res := &Result{}
	maxIter := opts.iterations(10000)

	currentKey := func() ([]bool, error) {
		satisfiable, err := s.Solve(m.AssumeNoDiff())
		if err != nil {
			return nil, err
		}
		if !satisfiable {
			return nil, fmt.Errorf("attack: observations inconsistent with locked netlist")
		}
		return m.ExtractKey1(), nil
	}

	for {
		if res.Iterations >= maxIter {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, ErrIterationBudget
		}
		satisfiable, err := s.Solve(m.AssumeDiff())
		if err != nil {
			res.SolverStats = s.Stats()
			return res, err
		}
		if !satisfiable {
			// Exact convergence, as in the plain SAT attack.
			key, err := currentKey()
			res.SolverStats = s.Stats()
			res.finish(o)
			if err != nil {
				return res, err
			}
			res.Key = key
			res.Converged = true
			return res, nil
		}
		x := m.ExtractInputs()
		y, err := o.Query(x)
		if err != nil {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, err
		}
		if err := m.AddIOConstraint(x, y); err != nil {
			return res, err
		}
		res.Iterations++

		if res.Iterations%opts.RoundsPerSettle != 0 {
			continue
		}
		// Settlement: estimate error of the current candidate key on
		// random queries, reinforcing each disagreement as a constraint.
		// Queries go through the oracle's word channel in batches; the
		// candidate key evaluates on the same batches in one parallel run.
		key, err := currentKey()
		if err != nil {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, err
		}
		if err := ev.SetKey(key); err != nil {
			return res, err
		}
		prog := ev.Program()
		disagreements := 0
		xr := make([]bool, locked.NumInputs())
		yr := make([]bool, locked.NumOutputs())
		in := make([]uint64, locked.NumInputs())
		for done := 0; done < opts.SettleSamples; {
			n := opts.SettleSamples - done
			if n > 64 {
				n = 64
			}
			for i := range in {
				in[i] = 0
			}
			for pat := 0; pat < n; pat++ {
				opts.Rand.Bits(xr)
				oracle.PackPattern(in, pat, xr)
			}
			want, err := oracle.QueryWords(o, in, n)
			if err != nil {
				res.SolverStats = s.Stats()
				res.finish(o)
				return res, err
			}
			for i, id := range prog.PIs {
				ev.SetInput(int(id), in[i:i+1])
			}
			ev.Run()
			var diff uint64
			for j, id := range prog.POs {
				diff |= want[j] ^ ev.Value(int(id))[0]
			}
			diff &= oracle.LaneMask(n)
			// Constraints are added in ascending lane order — the order
			// the scalar loop discovered them — keeping fixed-seed runs
			// bit-identical.
			for pat := 0; pat < n; pat++ {
				if diff>>uint(pat)&1 == 0 {
					continue
				}
				disagreements++
				oracle.UnpackPattern(in, pat, xr)
				oracle.UnpackPattern(want, pat, yr)
				if err := m.AddIOConstraint(append([]bool(nil), xr...), append([]bool(nil), yr...)); err != nil {
					return res, err
				}
			}
			done += n
		}
		if frac := float64(disagreements) / float64(opts.SettleSamples); frac <= opts.ErrorThreshold {
			res.SolverStats = s.Stats()
			res.finish(o)
			res.Key = key
			res.Converged = true
			return res, nil
		}
	}
}
