package attack

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
	"orap/internal/sim"
)

// lockedC17 returns c17 locked with the given scheme plus an ideal oracle.
func lockedRandom(t *testing.T, seed uint64, keyBits int) (*netlist.Circuit, *lock.Locked, oracle.Oracle) {
	t.Helper()
	r := rng.New(seed)
	orig := circuits.C17()
	l, err := lock.RandomXOR(orig, keyBits, r)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	return orig, l, o
}

func TestSATAttackRecoversRandomXORKey(t *testing.T) {
	orig, l, o := lockedRandom(t, 1, 5)
	res, err := SAT(l.Circuit, o, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SAT attack did not converge")
	}
	ok, err := VerifyKey(l.Circuit, orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("recovered key %v is not functionally correct", res.Key)
	}
	if res.Iterations == 0 && l.Circuit.NumKeys() > 0 {
		// Zero iterations would mean all keys equivalent; with 5 random
		// key gates on c17 that is wrong.
		t.Fatal("attack claimed convergence without any DIP")
	}
}

func TestSATAttackRecoversWeightedKey(t *testing.T) {
	r := rng.New(7)
	orig := circuits.RippleAdder(4)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 9, ControlWidth: 3, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SAT(l.Circuit, o, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyKey(l.Circuit, orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("SAT attack failed on weighted logic locking with an unprotected oracle")
	}
}

func TestSATAttackSARLockNeedsManyIterations(t *testing.T) {
	// SARLock on 5 inputs forces ~2^5 - something DIPs; verify the
	// iteration count is near the key space and far above random XOR's.
	r := rng.New(3)
	orig := circuits.C17()
	l, err := lock.SARLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SAT(l.Circuit, o, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 20 {
		t.Fatalf("SARLock defeated in %d iterations; expected near 2^5", res.Iterations)
	}
	ok, err := VerifyKey(l.Circuit, orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("SAT attack should still finish SARLock at this tiny scale")
	}
}

func TestSATAttackIterationBudget(t *testing.T) {
	r := rng.New(4)
	orig := circuits.C17()
	l, err := lock.SARLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := oracle.NewComb(orig, nil)
	_, err = SAT(l.Circuit, o, Budgets{MaxIterations: 3})
	if err != ErrIterationBudget {
		t.Fatalf("expected ErrIterationBudget, got %v", err)
	}
}

// countWrongInputsExhaustive counts input patterns (over all 2^n, n ≤ 12)
// on which the locked circuit under key disagrees with the original.
func countWrongInputsExhaustive(t *testing.T, orig, locked *netlist.Circuit, key []bool) int {
	t.Helper()
	n := orig.NumInputs()
	if n > 12 {
		t.Fatalf("too many inputs for exhaustive check: %d", n)
	}
	wrong := 0
	for v := 0; v < 1<<uint(n); v++ {
		x := make([]bool, n)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, x, nil)
		got, _ := sim.Eval(locked, x, key)
		for j := range want {
			if want[j] != got[j] {
				wrong++
				break
			}
		}
	}
	return wrong
}

func TestDoubleDIPApproximatesRandomXORKey(t *testing.T) {
	// Double DIP stops when no 2-DIP remains, so at most one wrong key
	// equivalence class (one last ordinary DIP's worth of error) can
	// survive on traditional locking.
	orig, l, o := lockedRandom(t, 5, 4)
	res, err := DoubleDIP(l.Circuit, o, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key == nil {
		t.Fatal("Double DIP returned no key")
	}
	if wrong := countWrongInputsExhaustive(t, orig, l.Circuit, res.Key); wrong > 2 {
		t.Fatalf("Double DIP key wrong on %d/32 inputs; expected near-correct", wrong)
	}
}

func TestDoubleDIPBeatsSATOnCompoundSARLock(t *testing.T) {
	// On a compound defense (traditional locking + SARLock), plain SAT
	// must drain the point-function tail one key per DIP (~2^5), while
	// Double DIP stops as soon as the traditional part is resolved.
	r := rng.New(6)
	orig := circuits.C17()
	l, err := lock.Stack(orig,
		func(c *netlist.Circuit) (*lock.Locked, error) { return lock.RandomXOR(c, 3, r) },
		func(c *netlist.Circuit) (*lock.Locked, error) { return lock.SARLock(c, 0, r) },
	)
	if err != nil {
		t.Fatal(err)
	}
	oA, _ := oracle.NewComb(orig, nil)
	oB, _ := oracle.NewComb(orig, nil)
	plain, err := SAT(l.Circuit, oA, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := DoubleDIP(l.Circuit, oB, Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if dd.Iterations*2 >= plain.Iterations {
		t.Fatalf("Double DIP used %d iterations vs plain SAT's %d; expected far fewer", dd.Iterations, plain.Iterations)
	}
	if wrong := countWrongInputsExhaustive(t, orig, l.Circuit, dd.Key); wrong > 2 {
		t.Fatalf("Double DIP compound key wrong on %d/32 inputs", wrong)
	}
}

func TestAppSATExactConvergence(t *testing.T) {
	orig, l, o := lockedRandom(t, 8, 4)
	res, err := AppSAT(l.Circuit, o, AppSATOptions{Rand: rng.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyKey(l.Circuit, orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("AppSAT failed on random XOR locking")
	}
}

func TestAppSATSettlesOnSARLock(t *testing.T) {
	// On SARLock, AppSAT should settle early with an approximately
	// correct key: wrong on at most a single input pattern.
	r := rng.New(10)
	orig := circuits.C17()
	l, err := lock.SARLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := oracle.NewComb(orig, nil)
	res, err := AppSAT(l.Circuit, o, AppSATOptions{
		Budgets:         Budgets{MaxIterations: 64},
		RoundsPerSettle: 4,
		SettleSamples:   32,
		Rand:            rng.New(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key == nil {
		t.Fatal("AppSAT returned no key")
	}
	// Count exact wrong inputs of the returned key.
	wrongInputs := 0
	for v := 0; v < 32; v++ {
		x := make([]bool, 5)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		want, _ := o.Query(x)
		got, _ := evalLocked(t, l, x, res.Key)
		for j := range want {
			if want[j] != got[j] {
				wrongInputs++
				break
			}
		}
	}
	if wrongInputs > 1 {
		t.Fatalf("AppSAT key wrong on %d/32 inputs; SARLock should admit ≤1", wrongInputs)
	}
}

func TestHillClimbRecoversRandomXORKey(t *testing.T) {
	orig, l, o := lockedRandom(t, 12, 4)
	res, err := HillClimb(l.Circuit, o, HillOptions{Patterns: 128, Restarts: 16, Rand: rng.New(13)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("hill climbing found no zero-cost key on the working set")
	}
	ok, err := VerifyKey(l.Circuit, orig, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("hill-climbed key not equivalent (working set may be too small)")
	}
}

// disjointLocked builds a circuit of two independent cones, each locked
// with one key gate, so both key bits propagate to isolated outputs — the
// directly sensitizable situation of the key-sensitization paper.
func disjointLocked(t *testing.T) (*netlist.Circuit, *netlist.Circuit, []bool) {
	t.Helper()
	orig := netlist.New("disjoint")
	a, _ := orig.AddInput("a")
	b, _ := orig.AddInput("b")
	c, _ := orig.AddInput("c")
	d, _ := orig.AddInput("d")
	o1 := orig.MustAddGate(netlist.And, "o1", a, b)
	o2 := orig.MustAddGate(netlist.Or, "o2", c, d)
	orig.MarkOutput(o1)
	orig.MarkOutput(o2)

	locked := netlist.New("disjoint_locked")
	la, _ := locked.AddInput("a")
	lb, _ := locked.AddInput("b")
	lc, _ := locked.AddInput("c")
	ld, _ := locked.AddInput("d")
	k0, _ := locked.AddKeyInput("keyinput0")
	k1, _ := locked.AddKeyInput("keyinput1")
	and := locked.MustAddGate(netlist.And, "and", la, lb)
	lo1 := locked.MustAddGate(netlist.Xor, "o1", and, k0) // correct k0 = 0
	or := locked.MustAddGate(netlist.Or, "or", lc, ld)
	lo2 := locked.MustAddGate(netlist.Xnor, "o2", or, k1) // correct k1 = 1
	locked.MarkOutput(lo1)
	locked.MarkOutput(lo2)
	return orig, locked, []bool{false, true}
}

func TestSensitizeRecoversIsolatedKeyBits(t *testing.T) {
	orig, locked, key := disjointLocked(t)
	o, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sensitize(locked, o, SensitizeOptions{Rand: rng.New(15)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("isolated key bits not all determined: %v", res.Determined)
	}
	for i := range key {
		if res.Key[i] != key[i] {
			t.Fatalf("key bit %d inferred as %v, truth %v", i, res.Key[i], key[i])
		}
	}
}

func TestSensitizeCorrectBitsOnRandomLocking(t *testing.T) {
	// On entangled random locking the attack may determine only some (or
	// no) bits, but every bit it does determine must be correct.
	orig, l, o := lockedRandom(t, 14, 3)
	res, err := Sensitize(l.Circuit, o, SensitizeOptions{Rand: rng.New(16)})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Determined {
		if d && res.Key[i] != l.Key[i] {
			// A determined-but-wrong bit means the verification sampling
			// is unsound, not merely incomplete.
			ok, verr := VerifyKey(l.Circuit, orig, l.Key)
			t.Fatalf("key bit %d inferred as %v, truth %v (sanity: correct key verifies=%v err=%v)",
				i, res.Key[i], l.Key[i], ok, verr)
		}
	}
}

func TestVerifyKeyRejectsWrongKey(t *testing.T) {
	orig, l, _ := lockedRandom(t, 16, 4)
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0]
	ok, err := VerifyKey(l.Circuit, orig, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong key verified as equivalent")
	}
	ok, err = VerifyKey(l.Circuit, orig, l.Key)
	if err != nil || !ok {
		t.Fatalf("correct key rejected (ok=%v err=%v)", ok, err)
	}
}

func TestSampleDisagreement(t *testing.T) {
	orig, l, o := lockedRandom(t, 17, 4)
	r := rng.New(18)
	exact, err := SampleDisagreement(l.Circuit, l.Key, o, 64, r)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 0 {
		t.Fatalf("correct key disagreement = %v, want 0", exact)
	}
	wrong := append([]bool(nil), l.Key...)
	for i := range wrong {
		wrong[i] = !wrong[i]
	}
	bad, err := SampleDisagreement(l.Circuit, wrong, o, 64, r)
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatal("all-flipped key shows zero disagreement")
	}
	_ = orig
}

// evalLocked is a tiny wrapper to keep test call sites short.
func evalLocked(t *testing.T, l *lock.Locked, x, key []bool) ([]bool, error) {
	t.Helper()
	return simEval(l.Circuit, x, key)
}

// simEval re-exports sim.Eval for test readability.
func simEval(c *netlist.Circuit, x, key []bool) ([]bool, error) {
	return sim.Eval(c, x, key)
}
