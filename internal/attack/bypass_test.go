package attack

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
	"orap/internal/sim"
)

func TestBypassDefeatsSARLock(t *testing.T) {
	orig := circuits.C17()
	l, err := lock.SARLock(orig, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any wrong key works; flip one bit of the truth.
	chosen := append([]bool(nil), l.Key...)
	chosen[0] = !chosen[0]
	res, err := Bypass(l.Circuit, o, chosen, BypassOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// SARLock with a fixed wrong key differs from *some* key on ≤ 2^n
	// point patterns; the enumeration over the second free key visits
	// them all, but the patch count must stay ≤ 32 (the input space).
	if len(res.Patches) == 0 || len(res.Patches) > 32 {
		t.Fatalf("patch count %d implausible for SARLock", len(res.Patches))
	}
	// The patched design must now be exactly the original function.
	for v := 0; v < 32; v++ {
		x := make([]bool, 5)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, x, nil)
		got, err := res.Eval(l.Circuit, x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("patched design wrong at %05b", v)
			}
		}
	}
}

func TestBypassBudgetOnHighCorruptionLocking(t *testing.T) {
	// Against weighted locking the disagreement set is enormous: the
	// bypass attack must hit its patch budget, reproducing why bypass
	// only threatens low-corruption (point-function) defenses.
	orig := circuits.RippleAdder(4)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 9, ControlWidth: 3, KeyGates: 9, Rand: rng.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := oracle.NewComb(orig, nil)
	chosen := make([]bool, 9)
	if _, err := Bypass(l.Circuit, o, chosen, BypassOptions{MaxPatches: 16}); err == nil {
		t.Fatal("bypass should exhaust its budget against high-corruption locking")
	}
}

func TestBypassStarvedByOraP(t *testing.T) {
	// The oracle-based step — querying the correct responses at the
	// disagreement points — fails against OraP: the patches record
	// locked-circuit responses and the patched design stays wrong.
	orig := circuits.C17()
	l, err := lock.SARLock(orig, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// The cleared OraP register presents the all-zero key; the test needs
	// a nonzero correct key or the locked-tested chip would accidentally
	// answer correctly (a 2^-n coincidence, not a protection property).
	nonzero := false
	for _, b := range l.Key {
		nonzero = nonzero || b
	}
	if !nonzero {
		t.Fatal("test setup drew the all-zero key; pick another seed")
	}
	cfg, err := orap.Protect(l.Circuit, l.Key, orig.NumInputs(), orig.NumOutputs(), scan.OraPBasic, orap.Options{Rand: rng.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	o := oracle.NewScan(ch)

	chosen := append([]bool(nil), l.Key...)
	chosen[0] = !chosen[0]
	res, err := Bypass(l.Circuit, o, chosen, BypassOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for v := 0; v < 32; v++ {
		x := make([]bool, 5)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, x, nil)
		got, err := res.Eval(l.Circuit, x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if want[j] != got[j] {
				wrong++
				break
			}
		}
	}
	if wrong == 0 {
		t.Fatal("bypass through the OraP oracle produced a correct design — protection broken")
	}
}

func TestBypassValidatesKeyWidth(t *testing.T) {
	orig := circuits.C17()
	l, _ := lock.SARLock(orig, 0, rng.New(5))
	o, _ := oracle.NewComb(orig, nil)
	if _, err := Bypass(l.Circuit, o, []bool{true}, BypassOptions{}); err == nil {
		t.Fatal("wrong key width accepted")
	}
}

func TestBypassPatchHardwareScalesWithPatches(t *testing.T) {
	b := &BypassResult{Patches: map[string][]bool{"00000": nil, "00001": nil}}
	one := &BypassResult{Patches: map[string][]bool{"00000": nil}}
	if b.PatchHardwareGE(5, 2) != 2*one.PatchHardwareGE(5, 2) {
		t.Fatal("patch hardware should be linear in patch count")
	}
}
