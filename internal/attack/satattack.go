package attack

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/sat"
)

// SAT runs the oracle-guided SAT attack: repeatedly solve the miter for a
// distinguishing input pattern (DIP), query the oracle, and constrain both
// key copies with the observation; when the miter becomes unsatisfiable,
// every key consistent with the observations is functionally equivalent on
// all inputs, and one such key is extracted. The miter is the
// cone-of-influence form (cnf.NewMiter), which duplicates only
// key-reachable logic.
func SAT(locked *netlist.Circuit, o oracle.Oracle, b Budgets) (*Result, error) {
	return satWithMiter(locked, o, b, cnf.NewMiter)
}

// satWithMiter is the SAT attack parameterized by the miter construction,
// so the benchmark suite can pit the cone-of-influence encoding against
// the legacy two-full-copy encoding on identical attack runs.
func satWithMiter(locked *netlist.Circuit, o oracle.Oracle, b Budgets,
	newMiter func(*sat.Solver, *netlist.Circuit) (*cnf.Miter, error)) (*Result, error) {
	if o.NumInputs() != locked.NumInputs() || o.NumOutputs() != locked.NumOutputs() {
		return nil, fmt.Errorf("attack: oracle shape %d/%d does not match circuit %d/%d",
			o.NumInputs(), o.NumOutputs(), locked.NumInputs(), locked.NumOutputs())
	}
	s := sat.New()
	s.MaxConflicts = b.MaxConflicts
	m, err := newMiter(s, locked)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	maxIter := b.iterations(10000)
	for {
		satisfiable, err := s.Solve(m.AssumeDiff())
		if err != nil {
			res.SolverStats = s.Stats()
			return res, err
		}
		if !satisfiable {
			break // no more DIPs: keys consistent with observations are equivalent
		}
		if res.Iterations >= maxIter {
			res.SolverStats = s.Stats()
			return res, ErrIterationBudget
		}
		x := m.ExtractInputs()
		y, err := o.Query(x)
		if err != nil {
			res.SolverStats = s.Stats()
			res.finish(o)
			return res, err
		}
		if err := m.AddIOConstraint(x, y); err != nil {
			return res, err
		}
		res.Iterations++
	}
	// Extract a consistent key with the disequality disabled.
	satisfiable, err := s.Solve(m.AssumeNoDiff())
	res.SolverStats = s.Stats()
	res.finish(o)
	if err != nil {
		return res, err
	}
	if !satisfiable {
		// No key satisfies the observations: the "oracle" responses are
		// inconsistent with the locked netlist's key space. This is the
		// OraP signature when the protected chip answers queries with a
		// cleared key register that the netlist models differently.
		return res, fmt.Errorf("attack: observations inconsistent with locked netlist (no candidate key)")
	}
	res.Key = m.ExtractKey1()
	res.Converged = true
	return res, nil
}

// encodeLockedWithKey encodes one copy of a locked circuit with its key
// inputs fixed to the given constants.
func encodeLockedWithKey(s *sat.Solver, locked *netlist.Circuit, key []bool) (*cnf.Instance, error) {
	inst, err := cnf.Encode(s, locked, cnf.Options{})
	if err != nil {
		return nil, err
	}
	if err := cnf.ConstrainBits(s, inst.KeyVars, key); err != nil {
		return nil, err
	}
	return inst, nil
}

// encodeShared encodes a circuit reusing the given primary-input variables.
func encodeShared(s *sat.Solver, c *netlist.Circuit, piVars []sat.Var) (*cnf.Instance, error) {
	return cnf.Encode(s, c, cnf.Options{PIVars: piVars})
}

// addXor2 emits d ↔ a ⊕ b.
func addXor2(s *sat.Solver, d, a, b sat.Lit) {
	s.AddClause(d.Not(), a, b)
	s.AddClause(d.Not(), a.Not(), b.Not())
	s.AddClause(d, a.Not(), b)
	s.AddClause(d, a, b.Not())
}
