package attack

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
	"orap/internal/sim"
)

// HillOptions tunes the hill-climbing attack.
type HillOptions struct {
	// Patterns is the number of oracle-labelled patterns in the working
	// set (default 256; rounded up to a multiple of 64).
	Patterns int
	// Restarts is the number of random restarts (default 8).
	Restarts int
	// MaxPasses bounds full key-bit sweeps per restart (default 64).
	MaxPasses int
	// Rand drives pattern generation and restarts; required.
	Rand *rng.Stream
}

// HillClimb runs the test-aware hill-climbing attack of Plaza & Markov:
// the attacker collects correct responses for a set of patterns (via the
// oracle, standing in for the designer-provided test data the paper
// mentions), then greedily flips key bits to minimise the output mismatch
// of the locked netlist against those responses, with random restarts.
//
// The mismatch evaluation is bit-parallel: all patterns are simulated in
// one pass per candidate key.
func HillClimb(locked *netlist.Circuit, o oracle.Oracle, opts HillOptions) (*Result, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("attack: HillClimb requires a random stream")
	}
	if opts.Patterns <= 0 {
		opts.Patterns = 256
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 8
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 64
	}
	nk := locked.NumKeys()
	if nk == 0 {
		return nil, fmt.Errorf("attack: circuit has no key inputs")
	}
	words := (opts.Patterns + 63) / 64
	patterns := words * 64

	// Collect labelled patterns from the oracle.
	p, err := sim.NewParallel(locked, words)
	if err != nil {
		return nil, err
	}
	inputWords := make([][]uint64, locked.NumInputs())
	for i := range inputWords {
		inputWords[i] = make([]uint64, words)
		opts.Rand.Words(inputWords[i])
	}
	want := make([][]uint64, locked.NumOutputs())
	for i := range want {
		want[i] = make([]uint64, words)
	}
	res := &Result{}
	// Label the working set through the oracle's word channel, one
	// 64-pattern word per interface crossing: the pattern words already
	// have the channel's bit-sliced layout.
	laneIn := make([]uint64, locked.NumInputs())
	for w := 0; w < words; w++ {
		for i := range laneIn {
			laneIn[i] = inputWords[i][w]
		}
		y, err := oracle.QueryWords(o, laneIn, 64)
		if err != nil {
			res.finish(o)
			return res, err
		}
		for i := range want {
			want[i][w] = y[i]
		}
	}
	for i, id := range locked.PIs {
		p.SetInput(id, inputWords[i])
	}

	// cost returns the number of mismatching output bits for a key.
	cost := func(key []bool) int {
		if err := p.SetKey(key); err != nil {
			panic(err)
		}
		p.Run()
		total := 0
		for i, id := range locked.POs {
			total += sim.DiffBits(p.Value(id), want[i], patterns)
		}
		return total
	}

	var bestKey []bool
	bestCost := -1
	for restart := 0; restart < opts.Restarts; restart++ {
		key := make([]bool, nk)
		opts.Rand.Bits(key)
		cur := cost(key)
		stalled := 0
		for pass := 0; pass < opts.MaxPasses && cur > 0; pass++ {
			improved := false
			for i := 0; i < nk; i++ {
				key[i] = !key[i]
				c := cost(key)
				switch {
				case c < cur:
					cur = c
					improved = true
				case c == cur && opts.Rand.Intn(4) == 0:
					// Sideways move: plateaus are common when key bits
					// are grouped behind control gates (weighted
					// locking) — a flat random walk still makes progress
					// toward assembling a correct group.
				default:
					key[i] = !key[i]
				}
			}
			res.Iterations++
			if improved {
				stalled = 0
				continue
			}
			// Single flips exhausted: try coordinated pair flips, which
			// cross the plateaus that grouped key bits (control gates)
			// create. Quadratic, so only for moderate key widths.
			if nk <= 64 {
			pairs:
				for i := 0; i < nk; i++ {
					for j := i + 1; j < nk; j++ {
						key[i] = !key[i]
						key[j] = !key[j]
						if c := cost(key); c < cur {
							cur = c
							improved = true
							break pairs
						}
						key[i] = !key[i]
						key[j] = !key[j]
					}
				}
			}
			if improved {
				stalled = 0
				continue
			}
			stalled++
			if stalled > nk {
				break // plateau exhausted for this restart
			}
		}
		if bestCost < 0 || cur < bestCost {
			bestCost = cur
			bestKey = append([]bool(nil), key...)
		}
		if bestCost == 0 {
			break
		}
	}
	res.Key = bestKey
	res.Converged = bestCost == 0
	res.finish(o)
	return res, nil
}
