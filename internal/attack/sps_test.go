package attack

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

func TestSPSFindsAntiSATFlipSignal(t *testing.T) {
	orig := circuits.RippleAdder(4)
	l, err := lock.AntiSAT(orig, 6, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SPS(l.Circuit, SPSOptions{Rand: rng.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidate < 0 {
		t.Fatal("SPS found no key-dependent skewed signal in Anti-SAT")
	}
	// The flip signal is one with probability 2^-6 under random key
	// halves, i.e. skewed toward 0.
	var cand SPSFinding
	for _, f := range res.Findings {
		if f.Node == res.Candidate {
			cand = f
		}
	}
	if cand.Probability > 0.05 {
		t.Fatalf("candidate probability %.3f, expected near 0", cand.Probability)
	}

	// Removal: cutting the wire must restore the original function.
	cut, err := SPSRemove(l.Circuit, cand)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]bool, cut.NumKeys())
	for v := 0; v < 1<<9; v++ {
		in := make([]bool, 9)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, in, nil)
		got, _ := sim.Eval(cut, in, key)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("SPS removal did not restore the function at %09b", v)
			}
		}
	}
}

func TestSPSNotApplicableToWeightedLocking(t *testing.T) {
	// The paper: OraP (+ weighted locking) "neither has signals with high
	// probability skew" — SPS must come back empty-handed.
	orig := circuits.RippleAdder(6)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 12, ControlWidth: 3, Rand: rng.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SPS(l.Circuit, SPSOptions{Rand: rng.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidate >= 0 {
		t.Fatalf("SPS found a candidate (node %d) in weighted locking — it should not apply", res.Candidate)
	}
}

func TestSPSIgnoresKeyFreeSkew(t *testing.T) {
	// A wide AND of plain inputs is skewed but not key-dependent; the
	// attack must not nominate it.
	c := netlist.New("skewed")
	var ins []int
	for i := 0; i < 8; i++ {
		id, _ := c.AddInput(string(rune('a' + i)))
		ins = append(ins, id)
	}
	k, _ := c.AddKeyInput("keyinput0")
	and := c.MustAddGate(netlist.And, "wideand", ins...)
	out := c.MustAddGate(netlist.Xor, "out", and, k)
	c.MarkOutput(out)
	res, err := SPS(c, SPSOptions{Rand: rng.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Node == and && f.KeyDependent {
			t.Fatal("key-free skewed AND flagged as key-dependent")
		}
	}
	if res.Candidate == and {
		t.Fatal("SPS nominated the key-free AND")
	}
}

func TestSPSOptionsValidated(t *testing.T) {
	if _, err := SPS(circuits.C17(), SPSOptions{}); err == nil {
		t.Fatal("missing Rand accepted")
	}
}

func TestSPSRemoveRangeChecked(t *testing.T) {
	if _, err := SPSRemove(circuits.C17(), SPSFinding{Node: 999}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}
