package attack

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/sim"
)

// SensitizeOptions tunes the key-sensitization attack.
type SensitizeOptions struct {
	// VerifySamples is the number of random other-key assignments used to
	// confirm that a candidate pattern propagates the target bit
	// regardless of the other key bits (default 16).
	VerifySamples int
	// MaxConflicts bounds SAT effort per key bit (0 = unlimited).
	MaxConflicts int64
	// Rand drives verification sampling; required.
	Rand *rng.Stream
}

// SensitizeResult extends Result with per-bit resolution status.
type SensitizeResult struct {
	Result
	// Determined[i] reports whether key bit i was recovered; undetermined
	// bits are left false in Key.
	Determined []bool
}

// Sensitize runs the key-sensitization attack of Yasin et al.: for each
// key bit it searches (with SAT) for a "golden" input pattern that
// propagates the bit to a primary output without interference from the
// other key bits, verifies non-interference by sampling, then infers the
// bit from a single oracle response. Key bits whose gates interfere
// pairwise (strong logic locking, or weighted locking's control gates)
// stay undetermined — reproducing why the attack pushed the field toward
// interference-aware insertion.
func Sensitize(locked *netlist.Circuit, o oracle.Oracle, opts SensitizeOptions) (*SensitizeResult, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("attack: Sensitize requires a random stream")
	}
	if opts.VerifySamples <= 0 {
		opts.VerifySamples = 16
	}
	nk := locked.NumKeys()
	if nk == 0 {
		return nil, fmt.Errorf("attack: circuit has no key inputs")
	}
	res := &SensitizeResult{}
	res.Key = make([]bool, nk)
	res.Determined = make([]bool, nk)

	// One compile serves both the cone analysis and the verify loop.
	prog, err := ir.Compile(locked)
	if err != nil {
		return nil, err
	}
	ev := sim.EvaluatorFor(prog)

	// Structural analysis: which outputs does each key bit reach, and
	// which outputs see exactly one key bit (isolated propagation, the
	// directly attackable case of Yasin et al.).
	keysReaching := make([][]int, locked.NumOutputs()) // per output: key bit indices in its TFI
	for b, keyNode := range locked.Keys {
		inCone := prog.TransitiveFanout(keyNode)
		for j, po := range locked.POs {
			if inCone[po] {
				keysReaching[j] = append(keysReaching[j], b)
			}
		}
	}

	// Confirmed golden patterns are not queried one by one: each bit's
	// inference is independent of the others, so the oracle confirmations
	// are deferred and sent through the word channel in batches of 64.
	type confirmation struct {
		bit, probe int
		x          []bool
		c0, c1     bool
	}
	var pending []confirmation

	otherKey := make([]bool, nk)
	key0 := make([]bool, nk)
	key1 := make([]bool, nk)
	for bit := 0; bit < nk; bit++ {
		// Candidate outputs: those reached by this bit, isolated ones
		// first (no other key bit in their fanin cone).
		var isolated, shared []int
		for j, ks := range keysReaching {
			reaches := false
			for _, b := range ks {
				if b == bit {
					reaches = true
					break
				}
			}
			if !reaches {
				continue
			}
			if len(ks) == 1 {
				isolated = append(isolated, j)
			} else {
				shared = append(shared, j)
			}
		}
		candidates := append(isolated, shared...)
		if len(candidates) > 8 {
			candidates = candidates[:8]
		}
		x, ok, err := findGoldenPattern(locked, bit, candidates, opts.MaxConflicts)
		if err != nil {
			return res, err
		}
		res.Iterations++
		if !ok {
			continue
		}
		// Verify per output: we need one primary output whose value at x
		// is constant across the other key bits for each value of the
		// target bit, with the two constants differing — a sensitized,
		// non-interfered propagation path for this bit alone.
		nOut := locked.NumOutputs()
		const0 := make([]bool, nOut) // value with bit=0 on first sample
		const1 := make([]bool, nOut)
		stable := make([]bool, nOut) // still constant across samples
		for j := range stable {
			stable[j] = true
		}
		for s := 0; s < opts.VerifySamples; s++ {
			opts.Rand.Bits(otherKey)
			copy(key0, otherKey)
			copy(key1, otherKey)
			key0[bit] = false
			key1[bit] = true
			o0, err := ev.Eval(x, key0)
			if err != nil {
				return res, err
			}
			o1, err := ev.Eval(x, key1)
			if err != nil {
				return res, err
			}
			for j := 0; j < nOut; j++ {
				if s == 0 {
					const0[j], const1[j] = o0[j], o1[j]
					continue
				}
				if o0[j] != const0[j] || o1[j] != const1[j] {
					stable[j] = false
				}
			}
		}
		probe := -1
		for j := 0; j < nOut; j++ {
			if stable[j] && const0[j] != const1[j] {
				probe = j
				break
			}
		}
		if probe < 0 {
			continue // every sensitized output is interfered with
		}
		pending = append(pending, confirmation{
			bit: bit, probe: probe, x: x,
			c0: const0[probe], c1: const1[probe],
		})
	}

	// Batched confirmation: one word-channel crossing per 64 golden
	// patterns, inferring each bit from its probe output's lane.
	in := make([]uint64, locked.NumInputs())
	for done := 0; done < len(pending); {
		n := len(pending) - done
		if n > 64 {
			n = 64
		}
		for i := range in {
			in[i] = 0
		}
		for pat := 0; pat < n; pat++ {
			oracle.PackPattern(in, pat, pending[done+pat].x)
		}
		y, err := oracle.QueryWords(o, in, n)
		if err != nil {
			res.finish(o)
			return res, err
		}
		for pat := 0; pat < n; pat++ {
			c := pending[done+pat]
			got := y[c.probe]>>uint(pat)&1 == 1
			switch got {
			case c.c0:
				res.Key[c.bit] = false
				res.Determined[c.bit] = true
			case c.c1:
				res.Key[c.bit] = true
				res.Determined[c.bit] = true
			}
		}
		done += n
	}
	res.finish(o)
	res.Converged = allTrue(res.Determined)
	return res, nil
}

// findGoldenPattern searches for an input pattern on which flipping key
// bit `bit` flips one of the candidate primary outputs for at least one
// assignment of the remaining key bits.
func findGoldenPattern(locked *netlist.Circuit, bit int, outputs []int, maxConflicts int64) ([]bool, bool, error) {
	if len(outputs) == 0 {
		return nil, false, nil // bit reaches no output: never sensitizable
	}
	s := sat.New()
	s.MaxConflicts = maxConflicts
	a, err := cnf.Encode(s, locked, cnf.Options{})
	if err != nil {
		return nil, false, err
	}
	// Second copy shares PIs and all key vars except the target bit.
	sharedKeys := append([]sat.Var(nil), a.KeyVars...)
	sharedKeys[bit] = s.NewVar()
	b, err := cnf.Encode(s, locked, cnf.Options{PIVars: a.PIVars, KeyVars: sharedKeys})
	if err != nil {
		return nil, false, err
	}
	// Target bit takes opposite values in the two copies.
	s.AddClause(sat.MkLit(a.KeyVars[bit], true), sat.MkLit(b.KeyVars[bit], true))
	s.AddClause(sat.MkLit(a.KeyVars[bit], false), sat.MkLit(b.KeyVars[bit], false))
	diffs := make([]sat.Lit, 0, len(outputs))
	for _, j := range outputs {
		d := sat.MkLit(s.NewVar(), false)
		addXor2(s, d, sat.MkLit(a.POVars[j], false), sat.MkLit(b.POVars[j], false))
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	satisfiable, err := s.Solve()
	if err != nil {
		return nil, false, err
	}
	if !satisfiable {
		return nil, false, nil
	}
	x := make([]bool, len(a.PIVars))
	for i, v := range a.PIVars {
		x[i] = s.Value(v) == sat.True
	}
	return x, true, nil
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return len(bs) > 0
}
