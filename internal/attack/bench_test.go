package attack

import (
	"testing"

	"orap/internal/benchgen"
	"orap/internal/cnf"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/rng"
)

// benchLocked builds the shared benchmark fixture: a scaled b20-profile
// circuit under weighted logic locking with an ideal combinational oracle.
func benchLocked(tb testing.TB, scale float64, keyBits int) (*netlist.Circuit, *lock.Locked) {
	tb.Helper()
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		tb.Fatal(err)
	}
	circuit, err := benchgen.Generate(prof.Scale(scale), 2020)
	if err != nil {
		tb.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits:      keyBits,
		ControlWidth: 3,
		KeyGates:     keyBits,
		Rand:         rng.New(2020),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return circuit, l
}

func BenchmarkSATAttackLegacyMiter(b *testing.B) {
	orig, l := benchLocked(b, 0.008, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := oracle.NewComb(orig, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := satWithMiter(l.Circuit, o, Budgets{}, cnf.NewMiterLegacy)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("legacy-miter attack did not converge")
		}
	}
}

func BenchmarkSATAttackCOI(b *testing.B) {
	orig, l := benchLocked(b, 0.008, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := oracle.NewComb(orig, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := satWithMiter(l.Circuit, o, Budgets{}, cnf.NewMiter)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("COI-miter attack did not converge")
		}
	}
}

// The serial/batched pairs below price the word-parallel oracle channel:
// the serial leg hides the word interface behind oracle.Scalarize, forcing
// one oracle crossing per pattern; the batched leg queries 64 at a time.

func benchSampleDisagreement(b *testing.B, wrap func(oracle.Oracle) oracle.Oracle) {
	orig, l := benchLocked(b, 0.008, 10)
	o, err := oracle.NewComb(orig, nil)
	if err != nil {
		b.Fatal(err)
	}
	wrong := make([]bool, l.Circuit.NumKeys())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleDisagreement(l.Circuit, wrong, wrap(o), 1024, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleDisagreementSerial(b *testing.B) {
	benchSampleDisagreement(b, oracle.Scalarize)
}

func BenchmarkSampleDisagreementBatched(b *testing.B) {
	benchSampleDisagreement(b, func(o oracle.Oracle) oracle.Oracle { return o })
}

func benchAppSAT(b *testing.B, wrap func(oracle.Oracle) oracle.Oracle) {
	orig, l := benchLocked(b, 0.008, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := oracle.NewComb(orig, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := AppSAT(l.Circuit, wrap(o), AppSATOptions{
			Budgets: Budgets{MaxIterations: 256},
			Rand:    rng.New(11),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Key == nil {
			b.Fatal("AppSAT returned no key")
		}
	}
}

func BenchmarkAppSATSerial(b *testing.B) {
	benchAppSAT(b, oracle.Scalarize)
}

func BenchmarkAppSATBatched(b *testing.B) {
	benchAppSAT(b, func(o oracle.Oracle) oracle.Oracle { return o })
}

// TestSATAttackCOIMatchesLegacyVerdict pins the equivalence the benchmark
// pair relies on: both encodings recover functionally correct keys on the
// same locked instance.
func TestSATAttackCOIMatchesLegacyVerdict(t *testing.T) {
	orig, l := benchLocked(t, 0.008, 10)
	oLegacy, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := satWithMiter(l.Circuit, oLegacy, Budgets{}, cnf.NewMiterLegacy)
	if err != nil {
		t.Fatal(err)
	}
	oCOI, err := oracle.NewComb(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	coi, err := satWithMiter(l.Circuit, oCOI, Budgets{}, cnf.NewMiter)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"legacy": legacy, "coi": coi} {
		if !res.Converged {
			t.Fatalf("%s attack did not converge", name)
		}
		ok, err := VerifyKey(l.Circuit, orig, res.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s attack recovered an incorrect key", name)
		}
	}
}
