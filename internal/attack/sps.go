package attack

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

// SPSOptions tunes the signal-probability-skew attack.
type SPSOptions struct {
	// Words is the number of 64-pattern words used to estimate signal
	// probabilities (default 64, i.e. 4096 random patterns).
	Words int
	// SkewThreshold flags signals whose estimated probability deviates
	// from 1/2 by at least this much (default 0.45, i.e. p ≤ 0.05 or
	// p ≥ 0.95 — the "highly skewed" signals of the SPS paper).
	SkewThreshold float64
	// Rand drives the random patterns; required.
	Rand *rng.Stream
}

// SPSFinding is one suspicious signal located by the attack.
type SPSFinding struct {
	// Node is the skewed signal.
	Node int
	// Probability is its estimated one-probability under random inputs
	// and random keys.
	Probability float64
	// KeyDependent reports whether key inputs reach the node — a skewed,
	// key-fed AND is the Anti-SAT signature.
	KeyDependent bool
}

// SPSResult reports the attack outcome.
type SPSResult struct {
	// Findings lists skewed signals, most skewed first.
	Findings []SPSFinding
	// Candidate is the node the attack would cut (the most skewed
	// key-dependent signal), or -1 when the attack does not apply.
	Candidate int
}

// SPS runs the oracle-less signal-probability-skew attack of Yasin et
// al.: Anti-SAT's flip signal g(X⊕K1) ∧ ḡ(X⊕K2) is one with probability
// ~2^-n, so estimating signal probabilities under random inputs *and*
// random keys exposes it; the attacker then cuts the flip wire (sets it
// to its skewed value) and removes the block.
//
// Against OraP + weighted logic locking the attack finds no key-dependent
// skewed signal — exactly the paper's claim that "the proposed scheme
// neither has signals with high probability skew, nor by removing the
// LFSR and/or the key gates … the circuit will unlock". The caller
// interprets Candidate == -1 as "attack not applicable".
func SPS(locked *netlist.Circuit, opts SPSOptions) (*SPSResult, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("attack: SPS requires a random stream")
	}
	if opts.Words <= 0 {
		opts.Words = 64
	}
	if opts.SkewThreshold <= 0 {
		opts.SkewThreshold = 0.45
	}
	p, err := sim.NewParallel(locked, opts.Words)
	if err != nil {
		return nil, err
	}
	// Random inputs AND random key bits (per pattern): skew that
	// survives key randomization is structural.
	for _, id := range locked.AllInputs() {
		opts.Rand.Words(p.Value(id))
	}
	p.Run()

	keyCone := make([]bool, locked.NumNodes())
	if len(locked.Keys) > 0 {
		cone := locked.TransitiveFanout(locked.Keys...)
		copy(keyCone, cone)
	}

	total := opts.Words * 64
	res := &SPSResult{Candidate: -1}
	for id, g := range locked.Gates {
		switch g.Type {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		ones := 0
		for _, w := range p.Value(id) {
			ones += bits.OnesCount64(w)
		}
		prob := float64(ones) / float64(total)
		if math.Abs(prob-0.5) < opts.SkewThreshold {
			continue
		}
		res.Findings = append(res.Findings, SPSFinding{
			Node:         id,
			Probability:  prob,
			KeyDependent: keyCone[id],
		})
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		si := math.Abs(res.Findings[i].Probability - 0.5)
		sj := math.Abs(res.Findings[j].Probability - 0.5)
		return si > sj
	})
	for _, f := range res.Findings {
		if f.KeyDependent {
			res.Candidate = f.Node
			break
		}
	}
	return res, nil
}

// SPSRemove applies the removal step on a candidate: the skewed signal is
// replaced by its dominant constant value, and the (now dead) generating
// logic falls away functionally. It returns a new circuit; the input is
// unmodified.
func SPSRemove(locked *netlist.Circuit, finding SPSFinding) (*netlist.Circuit, error) {
	if finding.Node < 0 || finding.Node >= locked.NumNodes() {
		return nil, fmt.Errorf("attack: SPS candidate %d out of range", finding.Node)
	}
	c := locked.Clone()
	c.Name = locked.Name + "_sps"
	// Tie the signal to its dominant value.
	cNode, err := c.AddConst(finding.Probability >= 0.5, "")
	if err != nil {
		return nil, err
	}
	// Rewire every consumer of the skewed node to the constant.
	for id := range c.Gates {
		fan := c.Gates[id].Fanin
		for i, f := range fan {
			if f == finding.Node {
				fan[i] = cNode
			}
		}
	}
	for i, o := range c.POs {
		if o == finding.Node {
			c.POs[i] = cNode
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SPSCutKeyDead tries the skewed key-dependent findings in skew order and
// returns the first cut that leaves every key input disconnected from the
// outputs — the attacker's oracle-less success criterion: once the real
// flip wire is tied off, the whole point-function block (and with it all
// key dependence) falls out of the logic cone.
func SPSCutKeyDead(locked *netlist.Circuit, res *SPSResult) (*netlist.Circuit, SPSFinding, bool) {
	for _, f := range res.Findings {
		if !f.KeyDependent {
			continue
		}
		cut, err := SPSRemove(locked, f)
		if err != nil {
			continue
		}
		if keysDead(cut) {
			return cut, f, true
		}
	}
	return nil, SPSFinding{}, false
}

// keysDead reports whether no key input reaches any primary output.
func keysDead(c *netlist.Circuit) bool {
	if c.NumKeys() == 0 {
		return true
	}
	live := c.TransitiveFanin(c.POs...)
	for _, k := range c.Keys {
		if live[k] {
			return false
		}
	}
	return true
}
