package attack

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/sat"
	"orap/internal/sim"
)

// BypassOptions tunes the bypass attack.
type BypassOptions struct {
	// MaxPatches bounds the number of corrected input patterns; the
	// attack reports failure beyond it (bypass is only economical against
	// low-corruption defenses where few inputs differ). Default 64.
	MaxPatches int
	// MaxConflicts bounds SAT effort (0 = unlimited).
	MaxConflicts int64
}

// BypassResult reports the bypass attack's outcome.
type BypassResult struct {
	// Key is the arbitrary (wrong) key the patched circuit applies.
	Key []bool
	// Patches maps the differing input patterns to their correct
	// responses; the attacker realizes them as comparator-plus-mux bypass
	// hardware around the locked chip.
	Patches map[string][]bool
	// OracleQueries counts oracle accesses.
	OracleQueries int
	// Channel holds oracle-channel telemetry when the attack ran against
	// an oracle.Session; zero otherwise.
	Channel oracle.ChannelStats

	// evalFor/eval memoize the compiled evaluator of the last circuit
	// passed to Eval, so verification loops do not recompile per pattern.
	evalFor *netlist.Circuit
	eval    *sim.Evaluator
}

// Bypass runs the bypass attack of Xu et al. (CHES'17): instead of
// searching for the correct key, the attacker fixes an arbitrary key,
// enumerates (with SAT) the inputs on which that keyed circuit could
// still disagree with the oracle, queries the oracle exactly there, and
// wraps the chip in bypass logic correcting those inputs. Against
// point-function defenses (SARLock, Anti-SAT) the disagreement set is a
// handful of patterns, so the bypass hardware is tiny.
//
// The attack is oracle-based: the patch table needs the *correct*
// responses at the disagreement points. Against an OraP chip those
// queries return locked-circuit responses and the patched design remains
// wrong — the same starvation as every other attack in this package.
//
// The enumeration uses a two-key miter: inputs where two independent key
// copies can disagree over-approximate the inputs where the chosen key
// can be wrong (for point-function defenses the set is the same, and
// tight enumeration would need the correct key).
func Bypass(locked *netlist.Circuit, o oracle.Oracle, chosenKey []bool, opts BypassOptions) (*BypassResult, error) {
	if len(chosenKey) != locked.NumKeys() {
		return nil, fmt.Errorf("attack: chosen key width %d != %d", len(chosenKey), locked.NumKeys())
	}
	if opts.MaxPatches <= 0 {
		opts.MaxPatches = 64
	}
	s := sat.New()
	s.MaxConflicts = opts.MaxConflicts
	// The legacy (two-full-copy) miter on purpose: the enumeration blocks
	// complete input patterns and the patch table is keyed by them, so
	// every primary input must be constrained by the encoding. The
	// cone-of-influence miter leaves key-unreachable inputs free and would
	// re-discover the same disagreement cone once per don't-care pattern.
	m, err := cnf.NewMiterLegacy(s, locked)
	if err != nil {
		return nil, err
	}
	// Fix key copy 1 to the chosen key; copy 2 ranges over all keys, so
	// the miter enumerates every input where SOME key disagrees with the
	// chosen one — a superset of the inputs where the chosen key is
	// wrong.
	if err := cnf.ConstrainBits(s, m.Key1, chosenKey); err != nil {
		return nil, err
	}
	res := &BypassResult{
		Key:     append([]bool(nil), chosenKey...),
		Patches: make(map[string][]bool),
	}
	for {
		satisfiable, err := s.Solve(m.AssumeDiff())
		if err != nil {
			return res, err
		}
		if !satisfiable {
			break
		}
		if len(res.Patches) >= opts.MaxPatches {
			return res, fmt.Errorf("attack: bypass patch budget exhausted (%d patterns; defense is not point-like)", opts.MaxPatches)
		}
		x := m.ExtractInputs()
		y, err := o.Query(x)
		if err != nil {
			res.OracleQueries = o.Queries()
			res.Channel = channelStats(o)
			return res, err
		}
		res.Patches[patternKey(x)] = y
		// Block this input pattern and continue enumerating.
		blocking := make([]sat.Lit, len(m.PIVars))
		for i, v := range m.PIVars {
			blocking[i] = sat.MkLit(v, x[i])
		}
		s.AddClause(blocking...)
	}
	res.OracleQueries = o.Queries()
	res.Channel = channelStats(o)
	return res, nil
}

// Eval evaluates the patched design: the locked circuit under the chosen
// key, with the patch table overriding the bypassed inputs. This is the
// functional view of the attacker's bypass hardware. The circuit is
// compiled on first use and reused while the same circuit is passed, so
// sampling loops stay cheap; not safe for concurrent use.
func (b *BypassResult) Eval(locked *netlist.Circuit, x []bool) ([]bool, error) {
	if y, ok := b.Patches[patternKey(x)]; ok {
		return append([]bool(nil), y...), nil
	}
	if b.eval == nil || b.evalFor != locked {
		ev, err := sim.NewEvaluator(locked)
		if err != nil {
			return nil, err
		}
		b.eval, b.evalFor = ev, locked
	}
	return b.eval.Eval(x, b.Key)
}

// PatchHardwareGE estimates the bypass hardware in NAND2 gate
// equivalents: per patched pattern, an input comparator (one XNOR per
// input + AND tree) and one mux per output bit that differs.
func (b *BypassResult) PatchHardwareGE(inputs, outputs int) float64 {
	perPattern := 3.0*float64(inputs) + float64(inputs-1) + 3.0*float64(outputs)
	return perPattern * float64(len(b.Patches))
}

func patternKey(x []bool) string {
	out := make([]byte, len(x))
	for i, b := range x {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
